#include "gpu_device.hh"

#include <algorithm>

#include "common/check.hh"

namespace harmonia
{

GpuDevice::GpuDevice(const GcnDeviceConfig &dev, TimingEngine engine,
                     GpuPowerModel gpuPower, BoardPowerModel boardPower)
    : dev_(dev), engine_(std::move(engine)),
      gpuPower_(std::move(gpuPower)), boardPower_(std::move(boardPower))
{
    dev_.validate();
}

GpuDevice::GpuDevice()
    : GpuDevice(hd7970(), TimingEngine(hd7970()), GpuPowerModel(hd7970()),
                BoardPowerModel())
{
}

KernelResult
GpuDevice::run(const KernelProfile &profile, int iteration,
               const HardwareConfig &cfg) const
{
    return run(profile, profile.phase(iteration), cfg);
}

KernelResult
GpuDevice::run(const KernelProfile &profile, const KernelPhase &phase,
               const HardwareConfig &cfg) const
{
    KernelResult out;
    out.timing = engine_.run(profile, phase, cfg);

    // Uncore/memory-path activity: fraction of L2 service bandwidth in
    // use while the kernel is busy.
    const double busy = std::max(out.timing.busyTime, 1e-12);
    const double l2Bps = out.timing.requestedBytes / busy;
    const double l2Activity = std::min(
        1.0,
        l2Bps / engine_.cacheModel().l2Bandwidth(cfg.computeFreqMhz));

    // Activity during the busy phase: the fraction of busy time the
    // vector ALUs are issuing (the counters themselves are normalized
    // to total time, which would double-count the idle launch window).
    const double busyValuPct =
        std::min(100.0, 100.0 * out.timing.computeTime / busy);
    const GpuPowerBreakdown busyGpu =
        gpuPower_.power(cfg, busyValuPct, l2Activity);
    const GpuPowerBreakdown idleGpu = gpuPower_.idlePower(cfg);

    const double offBps = out.timing.offChipBytes / busy;
    const MemPowerBreakdown busyMem = engine_.memorySystem().power(
        cfg.memFreqMhz, std::min(offBps, engine_.memorySystem()
                                             .peakBandwidth(cfg.memFreqMhz)),
        phase.rowHitFraction);
    const MemPowerBreakdown idleMem =
        engine_.memorySystem().power(cfg.memFreqMhz, 0.0, 1.0);

    const CardPowerBreakdown busyCard =
        boardPower_.compose(busyGpu, busyMem);
    const CardPowerBreakdown idleCard =
        boardPower_.compose(idleGpu, idleMem);

    const double tBusy = out.timing.busyTime;
    const double tIdle = out.timing.launchOverhead;
    const double tTotal = std::max(out.timing.execTime, 1e-12);

    out.cardEnergy = busyCard.total() * tBusy + idleCard.total() * tIdle;
    out.gpuEnergy =
        busyCard.gpuTotal() * tBusy + idleCard.gpuTotal() * tIdle;
    out.memEnergy =
        busyCard.memTotal() * tBusy + idleCard.memTotal() * tIdle;

    // Report the time-weighted average breakdown over the invocation.
    auto blend = [&](double busyW, double idleW) {
        return (busyW * tBusy + idleW * tIdle) / tTotal;
    };
    out.power.gpu.cuDynamic =
        blend(busyCard.gpu.cuDynamic, idleCard.gpu.cuDynamic);
    out.power.gpu.uncoreDynamic =
        blend(busyCard.gpu.uncoreDynamic, idleCard.gpu.uncoreDynamic);
    out.power.gpu.leakage =
        blend(busyCard.gpu.leakage, idleCard.gpu.leakage);
    out.power.mem.background =
        blend(busyCard.mem.background, idleCard.mem.background);
    out.power.mem.activatePrecharge = blend(
        busyCard.mem.activatePrecharge, idleCard.mem.activatePrecharge);
    out.power.mem.readWrite =
        blend(busyCard.mem.readWrite, idleCard.mem.readWrite);
    out.power.mem.termination =
        blend(busyCard.mem.termination, idleCard.mem.termination);
    out.power.mem.phy = blend(busyCard.mem.phy, idleCard.mem.phy);
    out.power.other = blend(busyCard.other, idleCard.other);

    HARMONIA_CHECK_NONNEG(out.cardEnergy);
    HARMONIA_CHECK_NONNEG(out.gpuEnergy);
    HARMONIA_CHECK_NONNEG(out.memEnergy);
    HARMONIA_CHECK_FINITE(out.power.total());
    return out;
}

} // namespace harmonia
