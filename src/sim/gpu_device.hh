/**
 * @file
 * The complete simulated GPU card: timing engine + power models.
 *
 * GpuDevice is the library's main substrate object. Governors,
 * examples, and benchmarks run kernels through it and receive a
 * KernelResult combining execution time, the Table 2 counter snapshot,
 * and the measured card power breakdown (Equation 4), with energy
 * integrated the way the paper's DAQ setup would measure it.
 */

#ifndef HARMONIA_SIM_GPU_DEVICE_HH
#define HARMONIA_SIM_GPU_DEVICE_HH

#include "power/board_power.hh"
#include "power/gpu_power.hh"
#include "timing/timing_engine.hh"

namespace harmonia
{

/** Result of one kernel invocation on the device. */
struct KernelResult
{
    KernelTiming timing;       ///< Time + counters.
    CardPowerBreakdown power;  ///< Average power while executing (W).
    double cardEnergy = 0.0;   ///< Card energy over the kernel (J).
    double gpuEnergy = 0.0;    ///< Chip-only energy (J).
    double memEnergy = 0.0;    ///< Memory-only energy (J).

    /** Execution time shorthand (s). */
    double time() const { return timing.execTime; }

    /** Energy-delay product (J*s). */
    double ed() const { return cardEnergy * time(); }

    /** Energy-delay-squared product (J*s^2). */
    double ed2() const { return cardEnergy * time() * time(); }
};

/**
 * The simulated GPU card.
 */
class GpuDevice
{
  public:
    /** Build with explicit models. */
    GpuDevice(const GcnDeviceConfig &dev, TimingEngine engine,
              GpuPowerModel gpuPower, BoardPowerModel boardPower);

    /** Default HD7970 device. */
    GpuDevice();

    const GcnDeviceConfig &config() const { return dev_; }
    const ConfigSpace &space() const { return engine_.configSpace(); }
    const TimingEngine &engine() const { return engine_; }
    const GpuPowerModel &gpuPower() const { return gpuPower_; }
    const BoardPowerModel &boardPower() const { return boardPower_; }

    /** Run one invocation of @p profile at iteration @p iteration. */
    KernelResult run(const KernelProfile &profile, int iteration,
                     const HardwareConfig &cfg) const;

    /** Run with an explicit phase (bypasses the phase function). */
    KernelResult run(const KernelProfile &profile,
                     const KernelPhase &phase,
                     const HardwareConfig &cfg) const;

  private:
    GcnDeviceConfig dev_;
    TimingEngine engine_;
    GpuPowerModel gpuPower_;
    BoardPowerModel boardPower_;
};

} // namespace harmonia

#endif // HARMONIA_SIM_GPU_DEVICE_HH
