#include "lattice_evaluator.hh"

#include <algorithm>
#include <cstring>

#include "common/check.hh"
#include "common/simd.hh"
#include "harmonia/common/thread_pool.hh"

namespace harmonia
{

LatticeEvaluator::LatticeEvaluator(const GpuDevice &device,
                                   const KernelProfile &profile,
                                   const KernelPhase &phase,
                                   ThreadPool *pool, bool simd)
    : device_(device), prep_(device.engine().prepare(profile, phase)),
      timing_(device.engine().buildAxisTables(prep_, pool, simd))
{
    const size_t nCu = timing_.cuValues.size();
    const size_t nCf = timing_.computeFreqValues.size();
    const size_t nMem = timing_.memFreqValues.size();

    // GPU-side power state depends only on the DPM state: active CU
    // count and compute frequency (which selects the voltage). The
    // plane entries are produced by exactly the calls run() makes, so
    // lookups are bitwise identical to recomputation; the memory
    // frequency in the probe config is irrelevant to both calls.
    gpuCuDynPrefix_.resize(nCu * nCf);
    gpuUncoreDynPrefix_.resize(nCu * nCf);
    gpuLeakage_.resize(nCu * nCf);
    idleGpuCuDynamic_.resize(nCu * nCf);
    idleGpuUncoreDynamic_.resize(nCu * nCf);
    idleGpuLeakage_.resize(nCu * nCf);
    idleGpuTotal_.resize(nCu * nCf);
    // factorsForLattice() hoists the per-frequency voltage lookup and
    // pow() out of the CU loop and is bitwise equal to calling
    // factorsFor() per slot; idlePower(cfg) is
    // powerFromFactors(factorsFor(cfg), 0, 0), so reusing the factors
    // skips the second voltage lookup and pow() with the same bits.
    std::vector<GpuPowerFactors> factors(nCu * nCf);
    device_.gpuPower().factorsForLattice(timing_.cuValues.data(), nCu,
                                         timing_.computeFreqValues.data(),
                                         nCf, factors.data());
    for (size_t slot = 0; slot < nCu * nCf; ++slot) {
        const GpuPowerBreakdown idle =
            device_.gpuPower().powerFromFactors(factors[slot], 0.0, 0.0);
        gpuCuDynPrefix_[slot] = factors[slot].cuDynPrefix;
        gpuUncoreDynPrefix_[slot] = factors[slot].uncoreDynPrefix;
        gpuLeakage_[slot] = factors[slot].leakage;
        idleGpuCuDynamic_[slot] = idle.cuDynamic;
        idleGpuUncoreDynamic_[slot] = idle.uncoreDynamic;
        idleGpuLeakage_[slot] = idle.leakage;
        idleGpuTotal_[slot] = idle.total();
    }

    // Memory-side power state depends only on the bus frequency.
    memFRatio_.resize(nMem);
    memLowFreqScale_.resize(nMem);
    memVScale_.resize(nMem);
    memBackground_.resize(nMem);
    idleMemBackground_.resize(nMem);
    idleMemActivatePrecharge_.resize(nMem);
    idleMemReadWrite_.resize(nMem);
    idleMemTermination_.resize(nMem);
    idleMemPhy_.resize(nMem);
    idleMemTotal_.resize(nMem);
    const MemorySystem &memsys = device_.engine().memorySystem();
    for (size_t m = 0; m < nMem; ++m) {
        const int memFreq = timing_.memFreqValues[m];
        const Gddr5PowerFactors memFactors =
            memsys.gddr5().factorsFor(memFreq);
        const MemPowerBreakdown idle =
            memsys.gddr5().powerFromFactors(memFactors, 0.0, 1.0);
        memFRatio_[m] = memFactors.fRatio;
        memLowFreqScale_[m] = memFactors.lowFreqScale;
        memVScale_[m] = memFactors.vScale;
        memBackground_[m] = memFactors.background;
        idleMemBackground_[m] = idle.background;
        idleMemActivatePrecharge_[m] = idle.activatePrecharge;
        idleMemReadWrite_[m] = idle.readWrite;
        idleMemTermination_[m] = idle.termination;
        idleMemPhy_[m] = idle.phy;
        idleMemTotal_[m] = idle.total();
    }
}

KernelResult
LatticeEvaluator::evaluate(const HardwareConfig &cfg) const
{
    KernelResult out;
    evaluateInto(cfg, out);
    return out;
}

void
LatticeEvaluator::evaluateInto(const HardwareConfig &cfg,
                               KernelResult &out) const
{
    evaluateAtInto(timing_.cuIndex(cfg.cuCount),
                   timing_.computeFreqIndex(cfg.computeFreqMhz),
                   timing_.memFreqIndex(cfg.memFreqMhz), out);
}

void
LatticeEvaluator::evaluateAtInto(size_t cuIdx, size_t cfIdx,
                                 size_t memIdx, KernelResult &out) const
{
    const size_t nCf = timing_.computeFreqValues.size();
    const size_t gpuSlot = cuIdx * nCf + cfIdx;
    const GpuPowerFactors gpuFactors{gpuCuDynPrefix_[gpuSlot],
                                     gpuUncoreDynPrefix_[gpuSlot],
                                     gpuLeakage_[gpuSlot]};
    const GpuPowerBreakdown idleGpu{idleGpuCuDynamic_[gpuSlot],
                                    idleGpuUncoreDynamic_[gpuSlot],
                                    idleGpuLeakage_[gpuSlot]};
    const Gddr5PowerFactors memFactors{memFRatio_[memIdx],
                                       memLowFreqScale_[memIdx],
                                       memVScale_[memIdx],
                                       memBackground_[memIdx]};
    const MemPowerBreakdown idleMem{idleMemBackground_[memIdx],
                                    idleMemActivatePrecharge_[memIdx],
                                    idleMemReadWrite_[memIdx],
                                    idleMemTermination_[memIdx],
                                    idleMemPhy_[memIdx]};
    device_.composeResultInto(
        out,
        device_.engine().evaluateAt(prep_, timing_, cuIdx, cfIdx, memIdx),
        prep_.phase, gpuFactors, idleGpu, memFactors, idleMem,
        timing_.l2Bandwidth[cfIdx], timing_.peakBandwidth[memIdx]);
}

void
LatticeEvaluator::evaluateBatchAtInto(const size_t *cuIdx,
                                      const size_t *cfIdx,
                                      const size_t *memIdx, size_t n,
                                      KernelResult *out) const
{
    for (size_t base = 0; base < n; base += kBatchChunk) {
        const size_t len = std::min(kBatchChunk, n - base);
        evaluateChunkAtInto(cuIdx + base, cfIdx + base, memIdx + base,
                            len, out + base);
    }
}

/**
 * The vertical kernel. Structure:
 *
 *  1. a gather stage provides each lane's axis-table and power-plane
 *     inputs: canonical chunks load packs directly from the SoA
 *     planes (contiguous, periodic, or broadcast runs), any other
 *     lane pattern goes through an indexed scalar gather into stack
 *     SoA buffers;
 *  2. vector passes mirror TimingEngine::combine() and
 *     GpuDevice::composeResultInto() op for op over the packs —
 *     same operations, same order, same operands per lane, only
 *     evaluated VDouble::width lanes at a time (so the results are
 *     bitwise identical to the scalar path; docs/MODEL.md §9);
 *  3. a scalar scatter pass assembles each KernelResult and runs the
 *     same always-on validation the scalar path runs.
 */
void
LatticeEvaluator::evaluateChunkAtInto(const size_t *cuIdx,
                                      const size_t *cfIdx,
                                      const size_t *memIdx, size_t n,
                                      KernelResult *out) const
{
    using simd::VDouble;
    constexpr size_t kC = kBatchChunk;

    const size_t nCu = timing_.cuValues.size();
    const size_t nCf = timing_.computeFreqValues.size();

    // ---- Gather: lane inputs from the SoA planes ---------------------
    alignas(64) double ct[kC];     // compute (ALU issue) time
    alignas(64) double l2t[kC];    // L2 service time
    alignas(64) double hit[kC];    // L2 hit rate
    alignas(64) double off[kC];    // off-chip bytes
    alignas(64) double bwBps[kC];  // resolved bandwidth
    alignas(64) double pk[kC];     // peak bus bandwidth
    alignas(64) double ipk[kC];    // 1 / peak bus bandwidth
    alignas(64) double l2bw[kC];   // L2 service bandwidth
    alignas(64) double gCuPre[kC], gUncPre[kC], gLeak[kC];
    alignas(64) double iCuDyn[kC], iUncDyn[kC], iLeak[kC], iGpuTot[kC];
    alignas(64) double mFR[kC], mLFS[kC], mVS[kC], mBG[kC];
    alignas(64) double imBG[kC], imAP[kC], imRW[kC], imTerm[kC],
        imPhy[kC], iMemTot[kC];
    // A chunk that walks the lattice in canonical mem-major order from
    // a compute-frequency row boundary (what GpuDevice::runLattice
    // produces for a canonical sweep) reads contiguous, periodic, or
    // chunk-constant table runs. The vector loop below then loads
    // straight from the SoA planes — contiguous packs from the
    // gpu-slot and bandwidth planes, one periodic L2 pack per
    // compute-frequency offset, and broadcasts for the per-CU-row and
    // per-chunk-constant values — instead of staging 25 gather
    // buffers. Fusion requires packs that never straddle a
    // compute-frequency row (nCf a multiple of the vector width);
    // otherwise the chunk takes the indexed gather, which handles any
    // lane pattern.
    bool canonical = n > 0 && cfIdx[0] == 0;
    if (canonical) {
        const size_t cu0 = cuIdx[0], m0 = memIdx[0];
        for (size_t i = 0; i < n && canonical; ++i)
            canonical = memIdx[i] == m0 && cfIdx[i] == i % nCf &&
                        cuIdx[i] == cu0 + i / nCf;
    }
    const bool fused = canonical && nCf % VDouble::width == 0;
    if (!fused) {
        for (size_t i = 0; i < n; ++i) {
            const size_t gpuSlot = cuIdx[i] * nCf + cfIdx[i];
            const size_t bwSlot =
                (memIdx[i] * nCu + cuIdx[i]) * nCf + cfIdx[i];
            ct[i] = timing_.computeTime[gpuSlot];
            l2t[i] = timing_.l2Time[cfIdx[i]];
            hit[i] = timing_.l2HitRate[cuIdx[i]];
            off[i] = timing_.offChipBytes[cuIdx[i]];
            bwBps[i] = timing_.bandwidthBps[bwSlot];
            pk[i] = timing_.peakBandwidth[memIdx[i]];
            ipk[i] = timing_.invPeakBandwidth[memIdx[i]];
            l2bw[i] = timing_.l2Bandwidth[cfIdx[i]];
            gCuPre[i] = gpuCuDynPrefix_[gpuSlot];
            gUncPre[i] = gpuUncoreDynPrefix_[gpuSlot];
            gLeak[i] = gpuLeakage_[gpuSlot];
            iCuDyn[i] = idleGpuCuDynamic_[gpuSlot];
            iUncDyn[i] = idleGpuUncoreDynamic_[gpuSlot];
            iLeak[i] = idleGpuLeakage_[gpuSlot];
            iGpuTot[i] = idleGpuTotal_[gpuSlot];
            mFR[i] = memFRatio_[memIdx[i]];
            mLFS[i] = memLowFreqScale_[memIdx[i]];
            mVS[i] = memVScale_[memIdx[i]];
            mBG[i] = memBackground_[memIdx[i]];
            imBG[i] = idleMemBackground_[memIdx[i]];
            imAP[i] = idleMemActivatePrecharge_[memIdx[i]];
            imRW[i] = idleMemReadWrite_[memIdx[i]];
            imTerm[i] = idleMemTermination_[memIdx[i]];
            imPhy[i] = idleMemPhy_[memIdx[i]];
            iMemTot[i] = idleMemTotal_[memIdx[i]];
        }
    }

    // ---- Vector outputs ----------------------------------------------
    alignas(64) double memTime[kC], busyTime[kC], execTime[kC];
    alignas(64) double valuBusy[kC], memUnitBusy[kC], memUnitStalled[kC],
        writeUnitStalled[kC], l2CacheHit[kC], icActivity[kC];
    alignas(64) double pCuDyn[kC], pUncDyn[kC], pLeak[kC];
    alignas(64) double pBG[kC], pAP[kC], pRW[kC], pTerm[kC], pPhy[kC],
        pOther[kC];
    alignas(64) double cardE[kC], gpuE[kC], memE[kC];

    const TimingParams &tp = device_.engine().params();
    const GpuPowerParams &gp = device_.gpuPower().params();
    const Gddr5PowerParams &mp =
        device_.engine().memorySystem().gddr5().powerParams();
    const BoardPowerParams &bp = device_.boardPower().params();

    const VDouble zero(0.0), one(1.0), hundred(100.0), tiny(1e-12);
    const VDouble vExposure(prep_.exposure);
    const VDouble vLaunch(tp.launchOverheadSec);
    const VDouble vBusW(tp.busStallWeight);
    // exposureStallWeight * prep.exposure is config-invariant; the
    // scalar combine recomputes the identical product per config.
    const VDouble vExpStall(tp.exposureStallWeight * prep_.exposure);
    const VDouble vWriteShare(prep_.writeShare);
    const VDouble vReqBytes(prep_.requestedBytes);
    const VDouble vFloor(gp.activityFloor);
    const VDouble vOneMinusFloor(1.0 - gp.activityFloor);
    const VDouble vOneMinusRowHit(1.0 - prep_.phase.rowHitFraction);
    const VDouble vRowBuf(mp.rowBufferBytes);
    const VDouble vActE(mp.activateEnergyNj), vNano(1.0e-9);
    const VDouble vRwE(mp.readWriteEnergyPjPerByte), vPico(1.0e-12);
    const VDouble vTermE(mp.terminationEnergyPjPerByte);
    const VDouble vPhyIdle(mp.phyIdleAtRef);
    const VDouble vPhyE(mp.phyEnergyPjPerByte);
    // fanWatts + miscWatts associates left in compose(), so the pair
    // folds into one broadcast without changing any bits.
    const VDouble vFanMisc(bp.fanWatts + bp.miscWatts);
    const VDouble vVr(bp.vrLossFraction);

    // Fused-gather bases and chunk-constant broadcasts: lane i of a
    // canonical chunk maps to gpu slot g0 + i, bandwidth slot b0 + i,
    // and the chunk's single memory frequency m0.
    const size_t g0 = fused ? cuIdx[0] * nCf : 0;
    const size_t b0 = fused ? (memIdx[0] * nCu + cuIdx[0]) * nCf : 0;
    VDouble cPk, cIpk, cMFR, cMLFS, cMVS, cMBG;
    VDouble cImBG, cImAP, cImRW, cImTerm, cImPhy, cIMemTot;
    if (fused) {
        const size_t m0 = memIdx[0];
        cPk = VDouble(timing_.peakBandwidth[m0]);
        cIpk = VDouble(timing_.invPeakBandwidth[m0]);
        cMFR = VDouble(memFRatio_[m0]);
        cMLFS = VDouble(memLowFreqScale_[m0]);
        cMVS = VDouble(memVScale_[m0]);
        cMBG = VDouble(memBackground_[m0]);
        cImBG = VDouble(idleMemBackground_[m0]);
        cImAP = VDouble(idleMemActivatePrecharge_[m0]);
        cImRW = VDouble(idleMemReadWrite_[m0]);
        cImTerm = VDouble(idleMemTermination_[m0]);
        cImPhy = VDouble(idleMemPhy_[m0]);
        cIMemTot = VDouble(idleMemTotal_[m0]);
    }

    for (size_t i = 0; i < n; i += VDouble::width) {
        const size_t lanes = std::min(VDouble::width, n - i);
        VDouble vCt, vL2t, vHit, vOff, vBw, vPk, vIpk;
        VDouble vL2bwIn, vGCuPre, vGUncPre, vGLeak;
        VDouble vICuDyn, vIUncDyn, vILeak, vIGpuTot;
        VDouble vMFR, vMLFS, vMVS, vMBG;
        VDouble vImBG, vImAP, vImRW, vImTerm, vImPhy, vIMemTot;
        if (fused) {
            vCt = VDouble::loadN(&timing_.computeTime[g0 + i], lanes);
            vBw = VDouble::loadN(&timing_.bandwidthBps[b0 + i], lanes);
            vGCuPre = VDouble::loadN(&gpuCuDynPrefix_[g0 + i], lanes);
            vGUncPre =
                VDouble::loadN(&gpuUncoreDynPrefix_[g0 + i], lanes);
            vGLeak = VDouble::loadN(&gpuLeakage_[g0 + i], lanes);
            vICuDyn = VDouble::loadN(&idleGpuCuDynamic_[g0 + i], lanes);
            vIUncDyn =
                VDouble::loadN(&idleGpuUncoreDynamic_[g0 + i], lanes);
            vILeak = VDouble::loadN(&idleGpuLeakage_[g0 + i], lanes);
            vIGpuTot = VDouble::loadN(&idleGpuTotal_[g0 + i], lanes);
            // The pack never straddles a compute-frequency row, so the
            // L2 axis repeats at offset i % nCf and the per-CU-row
            // values are pack constants.
            const size_t cf0 = i % nCf;
            vL2t = VDouble::loadN(&timing_.l2Time[cf0], lanes);
            vL2bwIn = VDouble::loadN(&timing_.l2Bandwidth[cf0], lanes);
            const size_t cu = cuIdx[0] + i / nCf;
            vHit = VDouble(timing_.l2HitRate[cu]);
            vOff = VDouble(timing_.offChipBytes[cu]);
            vPk = cPk;
            vIpk = cIpk;
            vMFR = cMFR;
            vMLFS = cMLFS;
            vMVS = cMVS;
            vMBG = cMBG;
            vImBG = cImBG;
            vImAP = cImAP;
            vImRW = cImRW;
            vImTerm = cImTerm;
            vImPhy = cImPhy;
            vIMemTot = cIMemTot;
            // The scatter pass reads these four lane inputs back.
            vCt.storeN(ct + i, lanes);
            vL2t.storeN(l2t + i, lanes);
            vHit.storeN(hit + i, lanes);
            vOff.storeN(off + i, lanes);
        } else {
            vCt = VDouble::loadN(ct + i, lanes);
            vL2t = VDouble::loadN(l2t + i, lanes);
            vHit = VDouble::loadN(hit + i, lanes);
            vOff = VDouble::loadN(off + i, lanes);
            vBw = VDouble::loadN(bwBps + i, lanes);
            vPk = VDouble::loadN(pk + i, lanes);
            vIpk = VDouble::loadN(ipk + i, lanes);
            vL2bwIn = VDouble::loadN(l2bw + i, lanes);
            vGCuPre = VDouble::loadN(gCuPre + i, lanes);
            vGUncPre = VDouble::loadN(gUncPre + i, lanes);
            vGLeak = VDouble::loadN(gLeak + i, lanes);
            vICuDyn = VDouble::loadN(iCuDyn + i, lanes);
            vIUncDyn = VDouble::loadN(iUncDyn + i, lanes);
            vILeak = VDouble::loadN(iLeak + i, lanes);
            vIGpuTot = VDouble::loadN(iGpuTot + i, lanes);
            vMFR = VDouble::loadN(mFR + i, lanes);
            vMLFS = VDouble::loadN(mLFS + i, lanes);
            vMVS = VDouble::loadN(mVS + i, lanes);
            vMBG = VDouble::loadN(mBG + i, lanes);
            vImBG = VDouble::loadN(imBG + i, lanes);
            vImAP = VDouble::loadN(imAP + i, lanes);
            vImRW = VDouble::loadN(imRW + i, lanes);
            vImTerm = VDouble::loadN(imTerm + i, lanes);
            vImPhy = VDouble::loadN(imPhy + i, lanes);
            vIMemTot = VDouble::loadN(iMemTot + i, lanes);
        }

        // -- TimingEngine::combine() ----------------------------------
        // Lanes with zero off-chip traffic or zero resolved bandwidth
        // divide anyway (the pad value keeps the operands finite only
        // on live lanes; a masked-out inf/NaN quotient is discarded by
        // the select, exactly like the scalar ternary skips it).
        const VDouble vMemTime =
            select(vOff > zero && vBw > zero, vOff / vBw, zero);
        const VDouble vLongest = vmax(vmax(vCt, vL2t), vMemTime);
        const VDouble vTotal = vCt + vL2t + vMemTime;
        const VDouble vBusy =
            vLongest + vExposure * (vTotal - vLongest);
        const VDouble vExec = vBusy + vLaunch;
        const VDouble vInvWall = one / vmax(vExec, tiny);
        const VDouble vValuBusy =
            vmin(hundred, hundred * vCt * vInvWall);
        const VDouble vMemActive = vmax(vL2t, vMemTime);
        const VDouble vMemBusy =
            vmin(hundred, hundred * vMemActive * vInvWall);
        const VDouble vBusUtil = vBw * vIpk;
        const VDouble vStallFrac =
            vmin(one, vBusW * vBusUtil + vExpStall);
        const VDouble vMemStalled = vMemBusy * vStallFrac;
        const VDouble vWriteStalled = vMemStalled * vWriteShare;
        const VDouble vL2Hit = hundred * vHit;
        const VDouble vAchieved = vOff * vInvWall;
        const VDouble vIc = vmin(vmin(vAchieved, vPk) / vPk, one);

        vMemTime.storeN(memTime + i, lanes);
        vBusy.storeN(busyTime + i, lanes);
        vExec.storeN(execTime + i, lanes);
        vValuBusy.storeN(valuBusy + i, lanes);
        vMemBusy.storeN(memUnitBusy + i, lanes);
        vMemStalled.storeN(memUnitStalled + i, lanes);
        vWriteStalled.storeN(writeUnitStalled + i, lanes);
        vL2Hit.storeN(l2CacheHit + i, lanes);
        vIc.storeN(icActivity + i, lanes);

        // -- GpuDevice::composeResultInto() ---------------------------
        const VDouble vInvBusy = one / vmax(vBusy, tiny);
        const VDouble vL2Bps = vReqBytes * vInvBusy;
        const VDouble vL2Act = vmin(one, vL2Bps / vL2bwIn);
        const VDouble vBusyValuPct =
            vmin(hundred, hundred * vCt * vInvBusy);

        // GpuPowerModel::powerFromFactors on the busy activity.
        const VDouble vCuAct =
            vFloor + vOneMinusFloor * vBusyValuPct / hundred;
        const VDouble vUncAct = vFloor + vOneMinusFloor * vL2Act;
        const VDouble vBusyCuDyn = vGCuPre * vCuAct;
        const VDouble vBusyUncDyn = vGUncPre * vUncAct;
        const VDouble vBusyLeak = vGLeak;

        // Gddr5Model::powerFromFactors on the busy traffic.
        const VDouble vOffBps = vOff * vInvBusy;
        const VDouble vTraffic = vmin(vOffBps, vPk);
        const VDouble vLfsVs = vMLFS;
        const VDouble vVsV = vMVS;
        const VDouble vBusyBG = vMBG;
        const VDouble vMiss = vTraffic * vOneMinusRowHit;
        const VDouble vBusyAP = vMiss / vRowBuf * vActE * vNano;
        const VDouble vBusyRW =
            vTraffic * vRwE * vPico * vLfsVs * vVsV;
        const VDouble vBusyTerm =
            vTraffic * vTermE * vPico * vLfsVs * vVsV;
        const VDouble vBusyPhy =
            (vPhyIdle * vMFR + vTraffic * vPhyE * vPico) * vVsV;

        // BoardPowerModel::compose on busy and idle breakdowns.
        const VDouble vBusyGpuTot =
            vBusyCuDyn + vBusyUncDyn + vBusyLeak;
        const VDouble vBusyMemTot =
            vBusyBG + vBusyAP + vBusyRW + vBusyTerm + vBusyPhy;
        const VDouble vBusyOther =
            vFanMisc + vVr * (vBusyGpuTot + vBusyMemTot);
        const VDouble vIdleGpuTot = vIGpuTot;
        const VDouble vIdleMemTot = vIMemTot;
        const VDouble vIdleOther =
            vFanMisc + vVr * (vIdleGpuTot + vIdleMemTot);
        const VDouble vBusyCardTot =
            vBusyGpuTot + vBusyMemTot + vBusyOther;
        const VDouble vIdleCardTot =
            vIdleGpuTot + vIdleMemTot + vIdleOther;

        // Energy integration and the nine time-weighted blends. The
        // scalar path's invTotal is the same expression as invWall on
        // the same execTime, so the reciprocal is shared here.
        const VDouble vCardE =
            vBusyCardTot * vBusy + vIdleCardTot * vLaunch;
        const VDouble vGpuE =
            vBusyGpuTot * vBusy + vIdleGpuTot * vLaunch;
        const VDouble vMemE =
            vBusyMemTot * vBusy + vIdleMemTot * vLaunch;
        auto blend = [&](VDouble busyW, VDouble idleW) {
            return (busyW * vBusy + idleW * vLaunch) * vInvWall;
        };
        const VDouble vPCuDyn = blend(vBusyCuDyn, vICuDyn);
        const VDouble vPUncDyn = blend(vBusyUncDyn, vIUncDyn);
        const VDouble vPLeak = blend(vBusyLeak, vILeak);
        const VDouble vPBG = blend(vBusyBG, vImBG);
        const VDouble vPAP = blend(vBusyAP, vImAP);
        const VDouble vPRW = blend(vBusyRW, vImRW);
        const VDouble vPTerm = blend(vBusyTerm, vImTerm);
        const VDouble vPPhy = blend(vBusyPhy, vImPhy);
        const VDouble vPOther = blend(vBusyOther, vIdleOther);

        vCardE.storeN(cardE + i, lanes);
        vGpuE.storeN(gpuE + i, lanes);
        vMemE.storeN(memE + i, lanes);
        vPCuDyn.storeN(pCuDyn + i, lanes);
        vPUncDyn.storeN(pUncDyn + i, lanes);
        vPLeak.storeN(pLeak + i, lanes);
        vPBG.storeN(pBG + i, lanes);
        vPAP.storeN(pAP + i, lanes);
        vPRW.storeN(pRW + i, lanes);
        vPTerm.storeN(pTerm + i, lanes);
        vPPhy.storeN(pPhy + i, lanes);
        vPOther.storeN(pOther + i, lanes);
    }

    // ---- Scatter: assemble results, run the scalar path's always-on
    // validation per lane -------------------------------------------
    for (size_t i = 0; i < n; ++i) {
        KernelResult &r = out[i];
        KernelTiming &t = r.timing;
        const size_t bwSlot =
            (memIdx[i] * nCu + cuIdx[i]) * nCf + cfIdx[i];
        t.execTime = execTime[i];
        t.computeTime = ct[i];
        t.l2Time = l2t[i];
        t.memTime = memTime[i];
        t.launchOverhead = tp.launchOverheadSec;
        t.busyTime = busyTime[i];
        t.occupancy = prep_.occupancy;
        t.l2HitRate = hit[i];
        t.requestedBytes = prep_.requestedBytes;
        t.offChipBytes = off[i];
        t.bandwidth = timing_.bandwidthAt(bwSlot);

        CounterSet &c = t.counters;
        c.valuBusy = valuBusy[i];
        c.valuUtilization = prep_.valuUtilization;
        c.memUnitBusy = memUnitBusy[i];
        c.memUnitStalled = memUnitStalled[i];
        c.writeUnitStalled = writeUnitStalled[i];
        c.l2CacheHit = l2CacheHit[i];
        c.icActivity = icActivity[i];
        c.normVgpr = prep_.normVgpr;
        c.normSgpr = prep_.normSgpr;
        c.valuInsts = prep_.aluWaveInsts;
        c.vfetchInsts = prep_.vfetchInsts;
        c.vwriteInsts = prep_.vwriteInsts;
        c.offChipBytes = off[i];
        c.validate();

        r.power.gpu.cuDynamic = pCuDyn[i];
        r.power.gpu.uncoreDynamic = pUncDyn[i];
        r.power.gpu.leakage = pLeak[i];
        r.power.mem.background = pBG[i];
        r.power.mem.activatePrecharge = pAP[i];
        r.power.mem.readWrite = pRW[i];
        r.power.mem.termination = pTerm[i];
        r.power.mem.phy = pPhy[i];
        r.power.other = pOther[i];
        r.cardEnergy = cardE[i];
        r.gpuEnergy = gpuE[i];
        r.memEnergy = memE[i];

        HARMONIA_CHECK_FINITE(t.execTime);
        HARMONIA_CHECK_NONNEG(t.busyTime);
        HARMONIA_CHECK(t.execTime >= t.launchOverhead,
                       "execTime below the fixed launch overhead");
        HARMONIA_CHECK_RANGE(t.l2HitRate, 0.0, 1.0);
        HARMONIA_CHECK_NONNEG(t.bandwidth.effectiveBps);
        HARMONIA_CHECK_NONNEG(r.cardEnergy);
        HARMONIA_CHECK_NONNEG(r.gpuEnergy);
        HARMONIA_CHECK_NONNEG(r.memEnergy);
        HARMONIA_CHECK_FINITE(r.power.total());
    }
}

} // namespace harmonia
