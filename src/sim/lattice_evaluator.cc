#include "lattice_evaluator.hh"

#include "common/thread_pool.hh"

namespace harmonia
{

LatticeEvaluator::LatticeEvaluator(const GpuDevice &device,
                                   const KernelProfile &profile,
                                   const KernelPhase &phase,
                                   ThreadPool *pool)
    : device_(device), prep_(device.engine().prepare(profile, phase)),
      timing_(device.engine().buildAxisTables(prep_, pool))
{
    const size_t nCu = timing_.cuValues.size();
    const size_t nCf = timing_.computeFreqValues.size();
    const size_t nMem = timing_.memFreqValues.size();

    // GPU-side power state depends only on the DPM state: active CU
    // count and compute frequency (which selects the voltage). The
    // table entries are produced by exactly the calls run() makes, so
    // lookups are bitwise identical to recomputation; the memory
    // frequency in the probe config is irrelevant to both calls.
    gpuFactors_.resize(nCu * nCf);
    idleGpu_.resize(nCu * nCf);
    for (size_t cu = 0; cu < nCu; ++cu) {
        for (size_t cf = 0; cf < nCf; ++cf) {
            HardwareConfig probe;
            probe.cuCount = timing_.cuValues[cu];
            probe.computeFreqMhz = timing_.computeFreqValues[cf];
            gpuFactors_[cu * nCf + cf] =
                device_.gpuPower().factorsFor(probe);
            // idlePower(cfg) is powerFromFactors(factorsFor(cfg), 0, 0);
            // reusing the factors just computed skips the second
            // voltage lookup and pow() while producing the same bits.
            idleGpu_[cu * nCf + cf] = device_.gpuPower().powerFromFactors(
                gpuFactors_[cu * nCf + cf], 0.0, 0.0);
        }
    }

    // Memory-side power state depends only on the bus frequency.
    memFactors_.resize(nMem);
    idleMem_.resize(nMem);
    const MemorySystem &memsys = device_.engine().memorySystem();
    for (size_t m = 0; m < nMem; ++m) {
        const int memFreq = timing_.memFreqValues[m];
        memFactors_[m] = memsys.gddr5().factorsFor(memFreq);
        idleMem_[m] = memsys.gddr5().powerFromFactors(memFactors_[m],
                                                      0.0, 1.0);
    }
}

KernelResult
LatticeEvaluator::evaluate(const HardwareConfig &cfg) const
{
    KernelResult out;
    evaluateInto(cfg, out);
    return out;
}

void
LatticeEvaluator::evaluateInto(const HardwareConfig &cfg,
                               KernelResult &out) const
{
    evaluateAtInto(timing_.cuIndex(cfg.cuCount),
                   timing_.computeFreqIndex(cfg.computeFreqMhz),
                   timing_.memFreqIndex(cfg.memFreqMhz), out);
}

void
LatticeEvaluator::evaluateAtInto(size_t cuIdx, size_t cfIdx,
                                 size_t memIdx, KernelResult &out) const
{
    const size_t nCf = timing_.computeFreqValues.size();
    device_.composeResultInto(
        out,
        device_.engine().evaluateAt(prep_, timing_, cuIdx, cfIdx, memIdx),
        prep_.phase, gpuFactors_[cuIdx * nCf + cfIdx],
        idleGpu_[cuIdx * nCf + cfIdx], memFactors_[memIdx],
        idleMem_[memIdx], timing_.l2Bandwidth[cfIdx],
        timing_.peakBandwidth[memIdx]);
}

} // namespace harmonia
