/**
 * @file
 * Factored lattice evaluation of one kernel invocation.
 *
 * Design-space sweeps evaluate the same (profile, phase) at all 448
 * points of the tunable lattice. The naive path recomputes everything
 * per point; almost all of it is config-invariant or depends on a
 * single tunable axis. LatticeEvaluator hoists that work once:
 *
 *  - the config-invariant bundle (TimingEngine::prepare): validation,
 *    occupancy, instruction and traffic totals;
 *  - the timing axis tables (TimingEngine::buildAxisTables): L2 hit
 *    rates per CU count, L2 bandwidth and crossing caps per compute
 *    frequency, ALU issue times per (CU, freq), peak bus bandwidth
 *    per memory frequency, and the resolved bandwidth lattice;
 *  - GPU power factors and DPM-state idle power per (CU count,
 *    compute frequency) — 64 voltage lookups and pow() calls instead
 *    of 448;
 *  - GDDR5 power factors and idle memory power per memory frequency.
 *
 * The hoisted tables are stored as structure-of-arrays planes (one
 * contiguous double array per model component) rather than arrays of
 * structs, so the batched path can stream each component with vector
 * loads. Two evaluation paths consume them:
 *
 *  - evaluate()/evaluateAtInto(): the scalar reference. Reassembles
 *    per-config structs from the planes and runs exactly the combine
 *    arithmetic the naive path runs (GpuDevice::composeResultInto),
 *    so the two paths produce bitwise-identical results.
 *  - evaluateBatchAtInto(): the SIMD path. Gathers lane inputs from
 *    the planes and evaluates the combine + power composition as
 *    vertical vector ops (src/common/simd.hh), op-for-op mirroring
 *    the scalar expression trees — no reassociation anywhere — so it
 *    is bitwise identical to the scalar path too (pinned by
 *    tests/test_simd_equivalence.cpp; contract in docs/MODEL.md §9).
 */

#ifndef HARMONIA_SIM_LATTICE_EVALUATOR_HH
#define HARMONIA_SIM_LATTICE_EVALUATOR_HH

#include <cstddef>
#include <vector>

#include "harmonia/sim/gpu_device.hh"

namespace harmonia
{

class ThreadPool;

/**
 * One (profile, phase) invocation, prepared for repeated evaluation
 * across the configuration lattice. Holds a reference to the device;
 * the device must outlive the evaluator.
 */
class LatticeEvaluator
{
  public:
    /** Lane-block size of the batched path: evaluateBatchAtInto()
     * processes lanes in chunks of this many configs, so batch
     * drivers get good parallel grain by chunking at the same size. */
    static constexpr size_t kBatchChunk = 64;

    /**
     * Hoist all config-invariant and axis-separable work for
     * (@p profile, @p phase). When @p pool is non-null the bandwidth
     * lattice is resolved in parallel (deterministically: each row
     * writes only its own slots). @p simd selects the lane-parallel
     * bandwidth bisection (bitwise identical either way).
     */
    LatticeEvaluator(const GpuDevice &device, const KernelProfile &profile,
                     const KernelPhase &phase, ThreadPool *pool = nullptr,
                     bool simd = true);

    const GpuDevice &device() const { return device_; }

    /** The config-invariant bundle. */
    const PreparedKernel &prepared() const { return prep_; }

    /** The timing-side axis tables. */
    const TimingAxisTables &timingTables() const { return timing_; }

    /**
     * Evaluate one lattice point from the hoisted state. Bitwise
     * identical to device().run(profile, phase, cfg).
     * @throws ConfigError when @p cfg is off the lattice.
     */
    KernelResult evaluate(const HardwareConfig &cfg) const;

    /** evaluate() writing into caller storage (assigns every field of
     * @p out); lets batch sweeps fill result arrays copy-free. */
    void evaluateInto(const HardwareConfig &cfg, KernelResult &out) const;

    /** evaluateInto() with the axis positions already derived — for
     * drivers iterating the lattice in index order. Indices must be
     * in range (unchecked). */
    void evaluateAtInto(size_t cuIdx, size_t cfIdx, size_t memIdx,
                        KernelResult &out) const;

    /**
     * SIMD-batched evaluateAtInto(): lane i evaluates the lattice
     * point (@p cuIdx[i], @p cfIdx[i], @p memIdx[i]) into @p out[i].
     * Lanes are independent — any subset, duplicates, or a single
     * point are all fine — and each lane's result is bitwise
     * identical to the corresponding evaluateAtInto() call. Indices
     * must be in range (unchecked).
     */
    void evaluateBatchAtInto(const size_t *cuIdx, const size_t *cfIdx,
                             const size_t *memIdx, size_t n,
                             KernelResult *out) const;

  private:
    /** One lane block (n <= kBatchChunk) of the batched path. */
    void evaluateChunkAtInto(const size_t *cuIdx, const size_t *cfIdx,
                             const size_t *memIdx, size_t n,
                             KernelResult *out) const;

    const GpuDevice &device_;
    PreparedKernel prep_;
    TimingAxisTables timing_;

    // (CU count, compute frequency) plane, row-major in CU count —
    // GpuPowerFactors and the DPM-state idle GpuPowerBreakdown split
    // into one plane per component.
    std::vector<double> gpuCuDynPrefix_;
    std::vector<double> gpuUncoreDynPrefix_;
    std::vector<double> gpuLeakage_;
    std::vector<double> idleGpuCuDynamic_;
    std::vector<double> idleGpuUncoreDynamic_;
    std::vector<double> idleGpuLeakage_;
    std::vector<double> idleGpuTotal_; ///< idle GpuPowerBreakdown::total().

    // Memory-frequency axis — Gddr5PowerFactors and the idle
    // MemPowerBreakdown, one plane per component.
    std::vector<double> memFRatio_;
    std::vector<double> memLowFreqScale_;
    std::vector<double> memVScale_;
    std::vector<double> memBackground_;
    std::vector<double> idleMemBackground_;
    std::vector<double> idleMemActivatePrecharge_;
    std::vector<double> idleMemReadWrite_;
    std::vector<double> idleMemTermination_;
    std::vector<double> idleMemPhy_;
    std::vector<double> idleMemTotal_; ///< idle MemPowerBreakdown::total().
};

} // namespace harmonia

#endif // HARMONIA_SIM_LATTICE_EVALUATOR_HH
