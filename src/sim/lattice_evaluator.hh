/**
 * @file
 * Factored lattice evaluation of one kernel invocation.
 *
 * Design-space sweeps evaluate the same (profile, phase) at all 448
 * points of the tunable lattice. The naive path recomputes everything
 * per point; almost all of it is config-invariant or depends on a
 * single tunable axis. LatticeEvaluator hoists that work once:
 *
 *  - the config-invariant bundle (TimingEngine::prepare): validation,
 *    occupancy, instruction and traffic totals;
 *  - the timing axis tables (TimingEngine::buildAxisTables): L2 hit
 *    rates per CU count, L2 bandwidth and crossing caps per compute
 *    frequency, ALU issue times per (CU, freq), peak bus bandwidth
 *    per memory frequency, and the resolved bandwidth lattice;
 *  - GPU power factors and DPM-state idle power per (CU count,
 *    compute frequency) — 64 voltage lookups and pow() calls instead
 *    of 448;
 *  - GDDR5 power factors and idle memory power per memory frequency.
 *
 * evaluate() then combines tables into a KernelResult with the same
 * arithmetic the naive path runs (GpuDevice::composeResult), so the
 * two paths produce bitwise-identical results.
 */

#ifndef HARMONIA_SIM_LATTICE_EVALUATOR_HH
#define HARMONIA_SIM_LATTICE_EVALUATOR_HH

#include <vector>

#include "sim/gpu_device.hh"

namespace harmonia
{

class ThreadPool;

/**
 * One (profile, phase) invocation, prepared for repeated evaluation
 * across the configuration lattice. Holds a reference to the device;
 * the device must outlive the evaluator.
 */
class LatticeEvaluator
{
  public:
    /**
     * Hoist all config-invariant and axis-separable work for
     * (@p profile, @p phase). When @p pool is non-null the bandwidth
     * lattice is resolved in parallel (deterministically: each row
     * writes only its own slots).
     */
    LatticeEvaluator(const GpuDevice &device, const KernelProfile &profile,
                     const KernelPhase &phase, ThreadPool *pool = nullptr);

    const GpuDevice &device() const { return device_; }

    /** The config-invariant bundle. */
    const PreparedKernel &prepared() const { return prep_; }

    /** The timing-side axis tables. */
    const TimingAxisTables &timingTables() const { return timing_; }

    /**
     * Evaluate one lattice point from the hoisted state. Bitwise
     * identical to device().run(profile, phase, cfg).
     * @throws ConfigError when @p cfg is off the lattice.
     */
    KernelResult evaluate(const HardwareConfig &cfg) const;

    /** evaluate() writing into caller storage (assigns every field of
     * @p out); lets batch sweeps fill result arrays copy-free. */
    void evaluateInto(const HardwareConfig &cfg, KernelResult &out) const;

    /** evaluateInto() with the axis positions already derived — for
     * drivers iterating the lattice in index order. Indices must be
     * in range (unchecked). */
    void evaluateAtInto(size_t cuIdx, size_t cfIdx, size_t memIdx,
                        KernelResult &out) const;

  private:
    const GpuDevice &device_;
    PreparedKernel prep_;
    TimingAxisTables timing_;

    // (CU count, compute frequency) plane, row-major in CU count.
    std::vector<GpuPowerFactors> gpuFactors_;
    std::vector<GpuPowerBreakdown> idleGpu_;

    // Memory-frequency axis.
    std::vector<Gddr5PowerFactors> memFactors_;
    std::vector<MemPowerBreakdown> idleMem_;
};

} // namespace harmonia

#endif // HARMONIA_SIM_LATTICE_EVALUATOR_HH
