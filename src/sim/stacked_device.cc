#include "stacked_device.hh"

namespace harmonia
{

GcnDeviceConfig
stackedMemoryConfig()
{
    GcnDeviceConfig cfg = hd7970();
    // Four HBM-style stacks, each a 1024-bit channel, double data
    // rate: peak BW = f x 512 B x 2.
    cfg.memChannels = 4;
    cfg.memBusBitsPerChannel = 1024;
    cfg.gddr5TransferRate = 2;
    cfg.memFreqMinMhz = 200;  // 205 GB/s
    cfg.memFreqMaxMhz = 550;  // 563 GB/s
    cfg.memFreqStepMhz = 50;  // 8 lattice points
    cfg.validate();
    return cfg;
}

Gddr5PowerParams
stackedMemoryPowerParams()
{
    Gddr5PowerParams p;
    p.refFreqMhz = 550.0;
    // On-package interconnect: ~4x lower per-bit IO energy, no board
    // termination network, smaller PHY.
    p.backgroundAtRef = 10.0;
    p.standbyFloor = 2.0;
    p.readWriteEnergyPjPerByte = 20.0;
    p.terminationEnergyPjPerByte = 4.0;
    p.phyIdleAtRef = 5.0;
    p.phyEnergyPjPerByte = 4.0;
    // On-package voltage regulation makes interface DVFS available.
    p.voltageScaling = true;
    return p;
}

Gddr5TimingParams
stackedMemoryTimingParams()
{
    Gddr5TimingParams t;
    t.coreLatencyNs = 140.0; // shorter path to the dies
    t.interfaceCycles = 30.0;
    return t;
}

GpuDevice
makeStackedDevice()
{
    const GcnDeviceConfig cfg = stackedMemoryConfig();
    const Gddr5Model model(stackedMemoryTimingParams(),
                           stackedMemoryPowerParams());
    // The L2->MC crossing still runs at the compute clock; a wider
    // on-package interface doubles its width.
    MemorySystem memsys(cfg, model, 640.0);
    TimingEngine engine(cfg, CacheModel(cfg), std::move(memsys),
                        TimingParams{});
    return GpuDevice(cfg, std::move(engine), GpuPowerModel(cfg),
                     BoardPowerModel());
}

} // namespace harmonia
