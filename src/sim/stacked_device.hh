/**
 * @file
 * Future-system variant: a GPU with on-package stacked DRAM.
 *
 * The paper's conclusion and insight 6 point at exactly this system:
 * "with advanced packaging technologies, compute and memory will
 * share tighter package power envelopes (e.g., compute with stacked
 * memory) ... coordinated power management and the concept of
 * hardware balance will become increasingly important in such
 * systems." This module builds that device so the `ext_stacked_memory`
 * bench can quantify how Harmonia behaves when the memory system is a
 * wide, slow-clocked, low-energy-per-bit HBM-style stack instead of
 * GDDR5:
 *
 *  - 4 stacks x 1024-bit channels (512 B aggregate bus) at 200-550
 *    MHz DDR -> 205..563 GB/s peak, i.e. roughly 2x the GDDR5 card;
 *  - far lower per-bit interface energy (no board traces to drive)
 *    but a shared, tighter package envelope;
 *  - interface voltage scaling available (on-package regulation).
 */

#ifndef HARMONIA_SIM_STACKED_DEVICE_HH
#define HARMONIA_SIM_STACKED_DEVICE_HH

#include "sim/gpu_device.hh"

namespace harmonia
{

/** Architecture description of the stacked-memory variant. */
GcnDeviceConfig stackedMemoryConfig();

/** GDDR5-model parameters retuned for an HBM-style stack. */
Gddr5PowerParams stackedMemoryPowerParams();

/** Timing parameters of the stack (lower interface latency). */
Gddr5TimingParams stackedMemoryTimingParams();

/**
 * Build the full stacked-memory device (timing engine + power models).
 * API-identical to the default GpuDevice, so every governor, bench,
 * and example runs on it unchanged.
 */
GpuDevice makeStackedDevice();

} // namespace harmonia

#endif // HARMONIA_SIM_STACKED_DEVICE_HH
