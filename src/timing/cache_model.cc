#include "harmonia/timing/cache_model.hh"

#include <algorithm>
#include <cmath>

#include "harmonia/common/error.hh"
#include "common/units.hh"

namespace harmonia
{

CacheModel::CacheModel(const GcnDeviceConfig &dev, CacheModelParams params)
    : dev_(dev), params_(params)
{
    dev_.validate();
    fatalIf(params_.thrashExponent <= 0.0,
            "CacheModel: thrashExponent must be positive");
    fatalIf(params_.l2BytesPerCycle <= 0.0,
            "CacheModel: l2BytesPerCycle must be positive");
}

CacheModel::CacheModel(const GcnDeviceConfig &dev)
    : CacheModel(dev, CacheModelParams{})
{
}

double
CacheModel::hitRate(const KernelPhase &phase, int cuCount) const
{
    fatalIf(cuCount <= 0, "CacheModel: cuCount must be positive");
    phase.validate();
    if (phase.l2FootprintPerCuBytes <= 0.0)
        return phase.l2HitBase;
    const double footprint = phase.l2FootprintPerCuBytes * cuCount;
    const double ratio = footprint / static_cast<double>(dev_.l2Bytes);
    if (ratio <= 1.0)
        return phase.l2HitBase;
    return phase.l2HitBase / std::pow(ratio, params_.thrashExponent);
}

double
CacheModel::l2Bandwidth(double computeFreqMhz) const
{
    fatalIf(computeFreqMhz <= 0.0,
            "CacheModel: compute frequency must be positive");
    return mhzToHz(computeFreqMhz) * params_.l2BytesPerCycle;
}

} // namespace harmonia
