#include "harmonia/timing/kernel_profile.hh"

#include "harmonia/common/error.hh"

namespace harmonia
{

void
KernelPhase::validate() const
{
    fatalIf(workItems <= 0.0, "KernelPhase: workItems must be positive");
    fatalIf(aluInstsPerItem < 0.0 || fetchInstsPerItem < 0.0 ||
                writeInstsPerItem < 0.0,
            "KernelPhase: negative instruction count");
    fatalIf(aluInstsPerItem + fetchInstsPerItem + writeInstsPerItem <=
                0.0,
            "KernelPhase: kernel executes no instructions");
    fatalIf(branchDivergence < 0.0 || branchDivergence >= 1.0,
            "KernelPhase: branchDivergence must be in [0, 1), got ",
            branchDivergence);
    fatalIf(divergenceSerialization < 0.0,
            "KernelPhase: negative divergenceSerialization");
    fatalIf(coalescing <= 0.0 || coalescing > 1.0,
            "KernelPhase: coalescing must be in (0, 1], got ",
            coalescing);
    fatalIf(l2HitBase < 0.0 || l2HitBase > 1.0,
            "KernelPhase: l2HitBase must be in [0, 1], got ", l2HitBase);
    fatalIf(l2FootprintPerCuBytes < 0.0,
            "KernelPhase: negative L2 footprint");
    fatalIf(rowHitFraction < 0.0 || rowHitFraction > 1.0,
            "KernelPhase: rowHitFraction must be in [0, 1], got ",
            rowHitFraction);
    fatalIf(mlpPerWave < 0.0, "KernelPhase: negative mlpPerWave");
    fatalIf(streamEfficiency <= 0.0 || streamEfficiency > 1.0,
            "KernelPhase: streamEfficiency must be in (0, 1], got ",
            streamEfficiency);
}

KernelPhase
KernelProfile::phase(int iteration) const
{
    fatalIf(iteration < 0, "KernelProfile: negative iteration");
    KernelPhase p = phaseFn ? phaseFn(basePhase, iteration) : basePhase;
    p.validate();
    return p;
}

} // namespace harmonia
