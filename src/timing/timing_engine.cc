#include "harmonia/timing/timing_engine.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "harmonia/common/error.hh"
#include "harmonia/common/thread_pool.hh"
#include "common/units.hh"

namespace harmonia
{

namespace
{

/** Position of @p value on an ascending arithmetic lattice axis. */
size_t
axisIndexOf(int value, const std::vector<int> &values, const char *what)
{
    fatalIf(values.empty(), "TimingAxisTables: empty ", what, " axis");
    const int lo = values.front();
    const int hi = values.back();
    const int step = values.size() > 1 ? values[1] - values[0] : 1;
    fatalIf(value < lo || value > hi || (value - lo) % step != 0,
            "TimingAxisTables: ", what, " = ", value,
            " is not on the lattice [", lo, ", ", hi, "] step ", step);
    return static_cast<size_t>((value - lo) / step);
}

} // namespace

size_t
TimingAxisTables::cuIndex(int cuCount) const
{
    return axisIndexOf(cuCount, cuValues, "CU-count");
}

size_t
TimingAxisTables::computeFreqIndex(int computeFreqMhz) const
{
    return axisIndexOf(computeFreqMhz, computeFreqValues, "compute-freq");
}

size_t
TimingAxisTables::memFreqIndex(int memFreqMhz) const
{
    return axisIndexOf(memFreqMhz, memFreqValues, "mem-freq");
}

TimingEngine::TimingEngine(const GcnDeviceConfig &dev, CacheModel cache,
                           MemorySystem memsys, TimingParams params)
    : dev_(dev), space_(dev), cache_(std::move(cache)),
      memsys_(std::move(memsys)), params_(params)
{
    dev_.validate();
    fatalIf(params_.issueEfficiency <= 0.0 ||
                params_.issueEfficiency > 1.0,
            "TimingEngine: issueEfficiency must be in (0, 1]");
    fatalIf(params_.launchOverheadSec < 0.0,
            "TimingEngine: negative launch overhead");
    fatalIf(params_.bytesPerLane <= 0.0,
            "TimingEngine: bytesPerLane must be positive");
    fatalIf(params_.overlapOccupancyKnee <= 0.0 ||
                params_.overlapOccupancyKnee > 1.0,
            "TimingEngine: overlapOccupancyKnee must be in (0, 1]");
}

TimingEngine::TimingEngine(const GcnDeviceConfig &dev)
    : TimingEngine(dev, CacheModel(dev), MemorySystem(dev, Gddr5Model()),
                   TimingParams{})
{
}

KernelTiming
TimingEngine::run(const KernelProfile &profile, const KernelPhase &phase,
                  const HardwareConfig &cfg) const
{
    space_.validate(cfg);
    const PreparedKernel prep = prepare(profile, phase);

    // The axis-dependent inputs, computed by direct model calls. The
    // factored path obtains the very same values from its tables.
    TimingAxisValues axis;
    const double issueRate =
        dev_.peakWaveInstRate(cfg.cuCount, cfg.computeFreqMhz) *
        params_.issueEfficiency;
    axis.computeTime = prep.issueSlots / issueRate;
    axis.l2HitRate = cache_.hitRate(phase, cfg.cuCount);
    axis.offChipBytes = prep.requestedBytes * (1.0 - axis.l2HitRate);

    // All traffic is serviced through the L2 (compute clock domain).
    axis.l2Time =
        prep.requestedBytes / cache_.l2Bandwidth(cfg.computeFreqMhz);

    MemDemand demand;
    demand.outstandingRequests = static_cast<double>(cfg.cuCount) *
                                 prep.occupancy.wavesPerCu *
                                 phase.mlpPerWave;
    demand.requestBytes = dev_.cacheLineBytes;
    demand.rowHitFraction = phase.rowHitFraction;
    demand.streamEfficiency = phase.streamEfficiency;
    axis.bandwidth = memsys_.resolveBandwidth(
        cfg.memFreqMhz, cfg.computeFreqMhz, demand);
    axis.peakBandwidth = memsys_.peakBandwidth(cfg.memFreqMhz);
    axis.invPeakBandwidth = 1.0 / axis.peakBandwidth;

    return combine(prep, axis);
}

PreparedKernel
TimingEngine::prepare(const KernelProfile &profile,
                      const KernelPhase &phase) const
{
    phase.validate();

    PreparedKernel out;
    out.phase = phase;
    out.occupancy = computeOccupancy(dev_, profile.resources);
    // With enough resident waves, compute and memory pipelines overlap
    // fully; at low occupancy part of the shorter phases is exposed.
    // A pure function of occupancy, so config-invariant.
    out.overlap = std::min(
        1.0, out.occupancy.occupancy / params_.overlapOccupancyKnee);
    out.exposure = 1.0 - out.overlap;
    out.waves = phase.workItems / dev_.wavefrontSize;

    // ---- Compute side ------------------------------------------------
    out.aluWaveInsts = out.waves * phase.aluInstsPerItem;
    // Divergent branches serialize both paths: extra issue slots are
    // spent re-executing with complementary lane masks.
    out.issueSlots =
        out.aluWaveInsts * (1.0 + phase.branchDivergence *
                                      phase.divergenceSerialization);

    // ---- Memory side -------------------------------------------------
    const double accessWaveInsts =
        out.waves * (phase.fetchInstsPerItem + phase.writeInstsPerItem);
    const double usefulBytesPerAccess =
        dev_.wavefrontSize * params_.bytesPerLane;
    out.requestedBytes =
        accessWaveInsts * usefulBytesPerAccess / phase.coalescing;

    const double accesses =
        phase.fetchInstsPerItem + phase.writeInstsPerItem;
    out.writeShare =
        accesses > 0.0 ? phase.writeInstsPerItem / accesses : 0.0;
    out.valuUtilization = 100.0 * (1.0 - phase.branchDivergence);
    out.normVgpr = static_cast<double>(profile.resources.vgprPerWorkitem) /
                   dev_.maxVgprPerWave;
    out.normSgpr = static_cast<double>(profile.resources.sgprPerWave) /
                   dev_.maxSgprPerWave;
    out.vfetchInsts = out.waves * phase.fetchInstsPerItem;
    out.vwriteInsts = out.waves * phase.writeInstsPerItem;
    return out;
}

TimingAxisTables
TimingEngine::buildAxisTables(const PreparedKernel &prep,
                              ThreadPool *pool, bool simd) const
{
    const KernelPhase &phase = prep.phase;

    TimingAxisTables t;
    t.cuValues = space_.values(Tunable::CuCount);
    t.computeFreqValues = space_.values(Tunable::ComputeFreq);
    t.memFreqValues = space_.values(Tunable::MemFreq);
    const size_t nCu = t.cuValues.size();
    const size_t nCf = t.computeFreqValues.size();
    const size_t nMem = t.memFreqValues.size();

    t.l2HitRate.resize(nCu);
    t.offChipBytes.resize(nCu);
    t.outstandingRequests.resize(nCu);
    for (size_t i = 0; i < nCu; ++i) {
        const int cu = t.cuValues[i];
        t.l2HitRate[i] = cache_.hitRate(phase, cu);
        t.offChipBytes[i] =
            prep.requestedBytes * (1.0 - t.l2HitRate[i]);
        t.outstandingRequests[i] = static_cast<double>(cu) *
                                   prep.occupancy.wavesPerCu *
                                   phase.mlpPerWave;
    }

    t.l2Bandwidth.resize(nCf);
    t.l2Time.resize(nCf);
    t.crossingCap.resize(nCf);
    for (size_t i = 0; i < nCf; ++i) {
        const int cf = t.computeFreqValues[i];
        t.l2Bandwidth[i] = cache_.l2Bandwidth(cf);
        t.l2Time[i] = prep.requestedBytes / t.l2Bandwidth[i];
        t.crossingCap[i] = memsys_.crossing().maxBandwidth(cf);
    }

    t.computeTime.resize(nCu * nCf);
    for (size_t cu = 0; cu < nCu; ++cu) {
        for (size_t cf = 0; cf < nCf; ++cf) {
            const double issueRate =
                dev_.peakWaveInstRate(t.cuValues[cu],
                                      t.computeFreqValues[cf]) *
                params_.issueEfficiency;
            t.computeTime[cu * nCf + cf] = prep.issueSlots / issueRate;
        }
    }

    t.peakBandwidth.resize(nMem);
    t.invPeakBandwidth.resize(nMem);
    for (size_t m = 0; m < nMem; ++m) {
        t.peakBandwidth[m] = memsys_.peakBandwidth(t.memFreqValues[m]);
        t.invPeakBandwidth[m] = 1.0 / t.peakBandwidth[m];
    }

    // The bandwidth lattice, built one memory-frequency slab at a
    // time. Two levers keep the slab cheap while staying bitwise
    // identical to per-point resolveBandwidth() calls:
    //
    //  1. Compute-frequency dedup: with zero outstanding requests the
    //     result never reads the crossing cap, and once both adjacent
    //     caps clear the bus ceiling the solve sees the identical
    //     supply ceiling and limiter ordering — reuse the previous
    //     entry in the row verbatim.
    //  2. Every remaining (CU, compute-freq) point in the slab is an
    //     independent lane of resolveLanesWithCrossingCap(), which
    //     interleaves the bisection solves so their division chains
    //     pipeline instead of running back to back.
    t.bandwidthBps.resize(nMem * nCu * nCf);
    t.bandwidthLatency.resize(nMem * nCu * nCf);
    t.bandwidthLimiter.resize(nMem * nCu * nCf);

    // Lane scratch for every slab, allocated once up front; slab m
    // touches only its own [m * nCu * nCf, ...) window, so the
    // parallel path stays write-disjoint.
    std::vector<double> laneOutstandingBuf(nMem * nCu * nCf);
    std::vector<double> laneCapBuf(nMem * nCu * nCf);
    std::vector<size_t> laneSlotBuf(nMem * nCu * nCf);
    std::vector<BandwidthResult> laneResultBuf(nMem * nCu * nCf);

    MemDemand demand;
    demand.requestBytes = dev_.cacheLineBytes;
    demand.rowHitFraction = phase.rowHitFraction;
    demand.streamEfficiency = phase.streamEfficiency;

    // A compute frequency dedups against its left neighbor when both
    // crossing caps clear the slab's bus ceiling (or the row has no
    // outstanding requests); everything else becomes a lane.
    auto dedups = [&](double outstanding, double busPeak, size_t cf) {
        return cf > 0 && (outstanding == 0.0 ||
                          (t.crossingCap[cf] >= busPeak &&
                           t.crossingCap[cf - 1] >= busPeak));
    };

    auto stageLanes = [&](size_t m) -> size_t {
        const double busPeak =
            t.peakBandwidth[m] * demand.streamEfficiency;
        double *laneOutstanding = &laneOutstandingBuf[m * nCu * nCf];
        double *laneCap = &laneCapBuf[m * nCu * nCf];
        size_t *laneSlot = &laneSlotBuf[m * nCu * nCf];
        size_t n = 0;
        for (size_t cu = 0; cu < nCu; ++cu) {
            for (size_t cf = 0; cf < nCf; ++cf) {
                if (dedups(t.outstandingRequests[cu], busPeak, cf))
                    continue;
                laneOutstanding[n] = t.outstandingRequests[cu];
                laneCap[n] = t.crossingCap[cf];
                laneSlot[n] = cu * nCf + cf;
                ++n;
            }
        }
        return n;
    };

    auto scatterSlab = [&](size_t m, size_t n) {
        const double busPeak =
            t.peakBandwidth[m] * demand.streamEfficiency;
        double *slabBps = &t.bandwidthBps[m * nCu * nCf];
        double *slabLatency = &t.bandwidthLatency[m * nCu * nCf];
        BandwidthLimiter *slabLimiter =
            &t.bandwidthLimiter[m * nCu * nCf];
        const size_t *laneSlot = &laneSlotBuf[m * nCu * nCf];
        const BandwidthResult *laneResult = &laneResultBuf[m * nCu * nCf];
        for (size_t l = 0; l < n; ++l) {
            slabBps[laneSlot[l]] = laneResult[l].effectiveBps;
            slabLatency[laneSlot[l]] = laneResult[l].latency;
            slabLimiter[laneSlot[l]] = laneResult[l].limiter;
        }
        for (size_t cu = 0; cu < nCu; ++cu) {
            const size_t row = cu * nCf;
            for (size_t cf = 1; cf < nCf; ++cf) {
                if (dedups(t.outstandingRequests[cu], busPeak, cf)) {
                    slabBps[row + cf] = slabBps[row + cf - 1];
                    slabLatency[row + cf] = slabLatency[row + cf - 1];
                    slabLimiter[row + cf] = slabLimiter[row + cf - 1];
                }
            }
        }
    };

    auto buildSlab = [&](size_t m) {
        const size_t n = stageLanes(m);
        memsys_.resolveLanesWithCrossingCap(
            t.memFreqValues[m], demand, n,
            &laneOutstandingBuf[m * nCu * nCf],
            &laneCapBuf[m * nCu * nCf], &laneResultBuf[m * nCu * nCf],
            simd);
        scatterSlab(m, n);
    };

    if (pool != nullptr && pool->numThreads() > 1) {
        pool->parallelFor(nMem, 1, buildSlab);
    } else if (simd) {
        // Serial SIMD path: stage every slab first and resolve them in
        // one multi-slab call, so the bisection packs of all memory
        // frequencies pipeline against each other (bitwise identical
        // to the per-slab calls; see resolveSlabLanesWithCrossingCap).
        std::vector<MemorySystem::SlabLaneRequest> reqs(nMem);
        for (size_t m = 0; m < nMem; ++m) {
            reqs[m].memFreqMhz = t.memFreqValues[m];
            reqs[m].lanes = stageLanes(m);
            reqs[m].outstanding = &laneOutstandingBuf[m * nCu * nCf];
            reqs[m].crossingCaps = &laneCapBuf[m * nCu * nCf];
            reqs[m].out = &laneResultBuf[m * nCu * nCf];
        }
        memsys_.resolveSlabLanesWithCrossingCap(reqs.data(), nMem,
                                                demand);
        for (size_t m = 0; m < nMem; ++m)
            scatterSlab(m, reqs[m].lanes);
    } else {
        for (size_t m = 0; m < nMem; ++m)
            buildSlab(m);
    }
    return t;
}

KernelTiming
TimingEngine::evaluate(const PreparedKernel &prep,
                       const TimingAxisTables &tables,
                       const HardwareConfig &cfg) const
{
    return evaluateAt(prep, tables, tables.cuIndex(cfg.cuCount),
                      tables.computeFreqIndex(cfg.computeFreqMhz),
                      tables.memFreqIndex(cfg.memFreqMhz));
}

KernelTiming
TimingEngine::evaluateAt(const PreparedKernel &prep,
                         const TimingAxisTables &tables, size_t cuIdx,
                         size_t cfIdx, size_t memIdx) const
{
    const size_t nCf = tables.computeFreqValues.size();

    TimingAxisValues axis;
    axis.computeTime = tables.computeTime[cuIdx * nCf + cfIdx];
    axis.l2HitRate = tables.l2HitRate[cuIdx];
    axis.offChipBytes = tables.offChipBytes[cuIdx];
    axis.l2Time = tables.l2Time[cfIdx];
    axis.peakBandwidth = tables.peakBandwidth[memIdx];
    axis.invPeakBandwidth = tables.invPeakBandwidth[memIdx];
    axis.bandwidth = tables.bandwidthAt(
        (memIdx * tables.cuValues.size() + cuIdx) * nCf + cfIdx);
    return combine(prep, axis);
}

KernelTiming
TimingEngine::combine(const PreparedKernel &prep,
                      const TimingAxisValues &axis) const
{
    KernelTiming out;
    out.occupancy = prep.occupancy;
    out.computeTime = axis.computeTime;
    out.requestedBytes = prep.requestedBytes;
    out.l2HitRate = axis.l2HitRate;
    out.offChipBytes = axis.offChipBytes;
    out.l2Time = axis.l2Time;
    out.bandwidth = axis.bandwidth;

    out.memTime = out.offChipBytes > 0.0 && out.bandwidth.effectiveBps > 0.0
                      ? out.offChipBytes / out.bandwidth.effectiveBps
                      : 0.0;

    // ---- Overlap -----------------------------------------------------
    // The kernel runs at the slowest of the three phases plus the
    // exposed (non-overlapped) remainder; the overlap fraction itself
    // is config-invariant and was hoisted into the prepared kernel.
    const double longest =
        std::max({out.computeTime, out.l2Time, out.memTime});
    const double total = out.computeTime + out.l2Time + out.memTime;
    out.busyTime = longest + prep.exposure * (total - longest);
    out.launchOverhead = params_.launchOverheadSec;
    out.execTime = out.busyTime + out.launchOverhead;

    // ---- Counters ----------------------------------------------------
    // Busy/stall counters are percentages of *total* GPU time for the
    // invocation (CodeXL semantics, Table 2), so launch overhead
    // dilutes them — which is exactly the signal that makes tiny
    // kernels look insensitive to every tunable.
    CounterSet &ctr = out.counters;
    // One reciprocal serves the three per-wall-time rates below; the
    // busy/stall percentages divide the only other way wall time is
    // consumed, so this is the per-config division hot spot.
    const double invWall = 1.0 / std::max(out.execTime, 1e-12);
    ctr.valuBusy = std::min(100.0, 100.0 * out.computeTime * invWall);
    ctr.valuUtilization = prep.valuUtilization;

    const double memActive = std::max(out.l2Time, out.memTime);
    ctr.memUnitBusy = std::min(100.0, 100.0 * memActive * invWall);

    const double busUtil =
        out.bandwidth.effectiveBps * axis.invPeakBandwidth;
    const double stallFrac =
        std::min(1.0, params_.busStallWeight * busUtil +
                          params_.exposureStallWeight * prep.exposure);
    ctr.memUnitStalled = ctr.memUnitBusy * stallFrac;
    ctr.writeUnitStalled = ctr.memUnitStalled * prep.writeShare;

    ctr.l2CacheHit = 100.0 * out.l2HitRate;
    const double achievedBps = out.offChipBytes * invWall;
    ctr.icActivity = icActivityOf(
        std::min(achievedBps, axis.peakBandwidth), axis.peakBandwidth);
    ctr.normVgpr = prep.normVgpr;
    ctr.normSgpr = prep.normSgpr;
    ctr.valuInsts = prep.aluWaveInsts;
    ctr.vfetchInsts = prep.vfetchInsts;
    ctr.vwriteInsts = prep.vwriteInsts;
    ctr.offChipBytes = out.offChipBytes;
    ctr.validate();

    HARMONIA_CHECK_FINITE(out.execTime);
    HARMONIA_CHECK_NONNEG(out.busyTime);
    HARMONIA_CHECK(out.execTime >= out.launchOverhead,
                   "execTime below the fixed launch overhead");
    HARMONIA_CHECK_RANGE(out.l2HitRate, 0.0, 1.0);
    HARMONIA_CHECK_NONNEG(out.bandwidth.effectiveBps);
    return out;
}

KernelTiming
TimingEngine::runIteration(const KernelProfile &profile, int iteration,
                           const HardwareConfig &cfg) const
{
    return run(profile, profile.phase(iteration), cfg);
}

} // namespace harmonia
