#include "timing_engine.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/error.hh"
#include "common/units.hh"

namespace harmonia
{

TimingEngine::TimingEngine(const GcnDeviceConfig &dev, CacheModel cache,
                           MemorySystem memsys, TimingParams params)
    : dev_(dev), space_(dev), cache_(std::move(cache)),
      memsys_(std::move(memsys)), params_(params)
{
    dev_.validate();
    fatalIf(params_.issueEfficiency <= 0.0 ||
                params_.issueEfficiency > 1.0,
            "TimingEngine: issueEfficiency must be in (0, 1]");
    fatalIf(params_.launchOverheadSec < 0.0,
            "TimingEngine: negative launch overhead");
    fatalIf(params_.bytesPerLane <= 0.0,
            "TimingEngine: bytesPerLane must be positive");
    fatalIf(params_.overlapOccupancyKnee <= 0.0 ||
                params_.overlapOccupancyKnee > 1.0,
            "TimingEngine: overlapOccupancyKnee must be in (0, 1]");
}

TimingEngine::TimingEngine(const GcnDeviceConfig &dev)
    : TimingEngine(dev, CacheModel(dev), MemorySystem(dev, Gddr5Model()),
                   TimingParams{})
{
}

KernelTiming
TimingEngine::run(const KernelProfile &profile, const KernelPhase &phase,
                  const HardwareConfig &cfg) const
{
    space_.validate(cfg);
    phase.validate();

    KernelTiming out;
    out.occupancy = computeOccupancy(dev_, profile.resources);

    const double waves = phase.workItems / dev_.wavefrontSize;

    // ---- Compute side ------------------------------------------------
    const double aluWaveInsts = waves * phase.aluInstsPerItem;
    // Divergent branches serialize both paths: extra issue slots are
    // spent re-executing with complementary lane masks.
    const double issueSlots =
        aluWaveInsts * (1.0 + phase.branchDivergence *
                                  phase.divergenceSerialization);
    const double issueRate =
        dev_.peakWaveInstRate(cfg.cuCount, cfg.computeFreqMhz) *
        params_.issueEfficiency;
    out.computeTime = issueSlots / issueRate;

    // ---- Memory side -------------------------------------------------
    const double accessWaveInsts =
        waves * (phase.fetchInstsPerItem + phase.writeInstsPerItem);
    const double usefulBytesPerAccess =
        dev_.wavefrontSize * params_.bytesPerLane;
    out.requestedBytes =
        accessWaveInsts * usefulBytesPerAccess / phase.coalescing;

    out.l2HitRate = cache_.hitRate(phase, cfg.cuCount);
    out.offChipBytes = out.requestedBytes * (1.0 - out.l2HitRate);

    // All traffic is serviced through the L2 (compute clock domain).
    out.l2Time =
        out.requestedBytes / cache_.l2Bandwidth(cfg.computeFreqMhz);

    MemDemand demand;
    demand.outstandingRequests = static_cast<double>(cfg.cuCount) *
                                 out.occupancy.wavesPerCu *
                                 phase.mlpPerWave;
    demand.requestBytes = dev_.cacheLineBytes;
    demand.rowHitFraction = phase.rowHitFraction;
    demand.streamEfficiency = phase.streamEfficiency;
    out.bandwidth = memsys_.resolveBandwidth(
        cfg.memFreqMhz, cfg.computeFreqMhz, demand);

    out.memTime = out.offChipBytes > 0.0 && out.bandwidth.effectiveBps > 0.0
                      ? out.offChipBytes / out.bandwidth.effectiveBps
                      : 0.0;

    // ---- Overlap -----------------------------------------------------
    // With enough resident waves, compute and memory pipelines overlap
    // fully and the kernel runs at the slowest of the three; at low
    // occupancy part of the shorter phases is exposed.
    const double longest =
        std::max({out.computeTime, out.l2Time, out.memTime});
    const double total = out.computeTime + out.l2Time + out.memTime;
    const double overlap = std::min(
        1.0, out.occupancy.occupancy / params_.overlapOccupancyKnee);
    out.busyTime = longest + (1.0 - overlap) * (total - longest);
    out.launchOverhead = params_.launchOverheadSec;
    out.execTime = out.busyTime + out.launchOverhead;

    // ---- Counters ----------------------------------------------------
    // Busy/stall counters are percentages of *total* GPU time for the
    // invocation (CodeXL semantics, Table 2), so launch overhead
    // dilutes them — which is exactly the signal that makes tiny
    // kernels look insensitive to every tunable.
    CounterSet &ctr = out.counters;
    const double wallTime = std::max(out.execTime, 1e-12);
    ctr.valuBusy = std::min(100.0, 100.0 * out.computeTime / wallTime);
    ctr.valuUtilization = 100.0 * (1.0 - phase.branchDivergence);

    const double memActive = std::max(out.l2Time, out.memTime);
    ctr.memUnitBusy = std::min(100.0, 100.0 * memActive / wallTime);

    const double busUtil =
        out.bandwidth.effectiveBps /
        memsys_.peakBandwidth(cfg.memFreqMhz);
    const double exposure = 1.0 - overlap;
    const double stallFrac =
        std::min(1.0, params_.busStallWeight * busUtil +
                          params_.exposureStallWeight * exposure);
    ctr.memUnitStalled = ctr.memUnitBusy * stallFrac;

    const double accesses =
        phase.fetchInstsPerItem + phase.writeInstsPerItem;
    const double writeShare =
        accesses > 0.0 ? phase.writeInstsPerItem / accesses : 0.0;
    ctr.writeUnitStalled = ctr.memUnitStalled * writeShare;

    ctr.l2CacheHit = 100.0 * out.l2HitRate;
    const double achievedBps = out.offChipBytes / wallTime;
    ctr.icActivity = icActivityOf(
        std::min(achievedBps, memsys_.peakBandwidth(cfg.memFreqMhz)),
        memsys_.peakBandwidth(cfg.memFreqMhz));
    ctr.normVgpr = static_cast<double>(profile.resources.vgprPerWorkitem) /
                   dev_.maxVgprPerWave;
    ctr.normSgpr = static_cast<double>(profile.resources.sgprPerWave) /
                   dev_.maxSgprPerWave;
    ctr.valuInsts = aluWaveInsts;
    ctr.vfetchInsts = waves * phase.fetchInstsPerItem;
    ctr.vwriteInsts = waves * phase.writeInstsPerItem;
    ctr.offChipBytes = out.offChipBytes;
    ctr.validate();

    HARMONIA_CHECK_FINITE(out.execTime);
    HARMONIA_CHECK_NONNEG(out.busyTime);
    HARMONIA_CHECK(out.execTime >= out.launchOverhead,
                   "execTime below the fixed launch overhead");
    HARMONIA_CHECK_RANGE(out.l2HitRate, 0.0, 1.0);
    HARMONIA_CHECK_NONNEG(out.bandwidth.effectiveBps);
    return out;
}

KernelTiming
TimingEngine::runIteration(const KernelProfile &profile, int iteration,
                           const HardwareConfig &cfg) const
{
    return run(profile, profile.phase(iteration), cfg);
}

} // namespace harmonia
