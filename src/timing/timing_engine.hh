/**
 * @file
 * The GPU timing engine.
 *
 * Maps (kernel profile, phase, hardware configuration) to execution
 * time and a full performance-counter snapshot. The model reproduces
 * the mechanisms the paper identifies as governing sensitivity to the
 * three tunables (Section 3):
 *
 *  - compute time scales with active CUs x CU frequency, inflated by
 *    branch-divergence serialization;
 *  - memory time is bounded by the min of bus peak bandwidth, the
 *    L2->MC clock-domain crossing (compute clock), and Little's-law
 *    concurrency from occupancy x per-wave MLP;
 *  - all traffic traverses the shared L2, whose hit rate degrades when
 *    many active CUs thrash it;
 *  - a fixed kernel-launch overhead makes very small kernels
 *    insensitive to every tunable;
 *  - compute and memory overlap fully only at high occupancy.
 */

#ifndef HARMONIA_TIMING_TIMING_ENGINE_HH
#define HARMONIA_TIMING_TIMING_ENGINE_HH

#include "arch/occupancy.hh"
#include "counters/perf_counters.hh"
#include "dvfs/tunables.hh"
#include "memsys/memory_system.hh"
#include "timing/cache_model.hh"
#include "timing/kernel_profile.hh"

namespace harmonia
{

/** Global timing-model coefficients. */
struct TimingParams
{
    /** Fraction of peak wave-issue slots usable in practice. */
    double issueEfficiency = 0.92;

    /** Fixed launch/teardown overhead per kernel invocation (s). */
    double launchOverheadSec = 12.0e-6;

    /** Bytes accessed per lane per vector memory instruction. */
    double bytesPerLane = 4.0;

    /** Occupancy at which compute/memory overlap saturates. */
    double overlapOccupancyKnee = 0.45;

    /** Extra stall weight when the memory bus saturates. */
    double busStallWeight = 0.55;

    /** Extra stall weight when latency is exposed (low occupancy). */
    double exposureStallWeight = 0.45;
};

/** Complete timing result of one kernel invocation. */
struct KernelTiming
{
    double execTime = 0.0;       ///< Total wall time (s), incl. launch.
    double computeTime = 0.0;    ///< Vector-ALU issue time (s).
    double l2Time = 0.0;         ///< L2 service time (s).
    double memTime = 0.0;        ///< Off-chip transfer time (s).
    double launchOverhead = 0.0; ///< Fixed overhead (s).
    double busyTime = 0.0;       ///< execTime - launchOverhead.

    OccupancyInfo occupancy;     ///< Concurrency achieved.
    double l2HitRate = 0.0;      ///< Effective L2 hit rate [0, 1].
    double requestedBytes = 0.0; ///< Bytes requested of the L2.
    double offChipBytes = 0.0;   ///< Bytes that went off chip.
    BandwidthResult bandwidth;   ///< Off-chip bandwidth resolution.

    CounterSet counters;         ///< Kernel-boundary counter snapshot.
};

/**
 * Deterministic analytic timing engine. Stateless and const: safe to
 * share across governors, oracle search, and benchmarks.
 */
class TimingEngine
{
  public:
    TimingEngine(const GcnDeviceConfig &dev, CacheModel cache,
                 MemorySystem memsys, TimingParams params);

    /** Engine with default cache/memory/timing parameters. */
    explicit TimingEngine(const GcnDeviceConfig &dev);

    const GcnDeviceConfig &device() const { return dev_; }
    const ConfigSpace &configSpace() const { return space_; }
    const CacheModel &cacheModel() const { return cache_; }
    const MemorySystem &memorySystem() const { return memsys_; }
    const TimingParams &params() const { return params_; }

    /**
     * Execute one kernel invocation.
     *
     * @param profile Static kernel description.
     * @param phase Dynamic behaviour for this invocation.
     * @param cfg Hardware configuration; must lie on the lattice.
     */
    KernelTiming run(const KernelProfile &profile,
                     const KernelPhase &phase,
                     const HardwareConfig &cfg) const;

    /** Convenience: run iteration @p iteration of @p profile. */
    KernelTiming runIteration(const KernelProfile &profile, int iteration,
                              const HardwareConfig &cfg) const;

  private:
    GcnDeviceConfig dev_;
    ConfigSpace space_;
    CacheModel cache_;
    MemorySystem memsys_;
    TimingParams params_;
};

} // namespace harmonia

#endif // HARMONIA_TIMING_TIMING_ENGINE_HH
