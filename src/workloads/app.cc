#include "harmonia/workloads/app.hh"

#include "harmonia/common/error.hh"

namespace harmonia
{

const KernelProfile &
Application::kernel(const std::string &kernelName) const
{
    for (const auto &k : kernels) {
        if (k.name == kernelName)
            return k;
    }
    fatal("Application '", name, "' has no kernel named '", kernelName,
          "'");
}

void
Application::validate() const
{
    fatalIf(name.empty(), "Application: empty name");
    fatalIf(kernels.empty(), "Application '", name, "': no kernels");
    fatalIf(iterations <= 0, "Application '", name,
            "': iterations must be positive");
    for (const auto &k : kernels) {
        fatalIf(k.app != name, "Application '", name, "': kernel '",
                k.name, "' claims app '", k.app, "'");
        fatalIf(k.name.empty(), "Application '", name,
                "': kernel with empty name");
        // Force phase evaluation of the first iteration to validate.
        (void)k.phase(0);
    }
}

} // namespace harmonia
