/**
 * @file
 * BPT (B+Tree searches, Daga & Nutter IA3'12).
 *
 * Signature (Section 7.1, Figure 10/13): pointer-chasing lookups with
 * heavy cache thrashing and memory divergence at 32 active CUs.
 * Lowering the number of active CUs via power gating *improves*
 * performance (+11% in the paper) by reducing interference in the
 * shared L2 — Harmonia's largest ED^2 win (~36%).
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeBpt()
{
    Application app;
    app.name = "BPT";
    app.iterations = 8;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "FindK";
        k.resources.vgprPerWorkitem = 40;
        k.resources.sgprPerWave = 32;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 28.0;  // key comparisons per level
        p.fetchInstsPerItem = 8.0; // one node per tree level
        p.writeInstsPerItem = 0.2;
        p.branchDivergence = 0.30;
        p.coalescing = 0.2;        // divergent node pointers
        p.l2HitBase = 0.55;        // hot upper levels cache well...
        p.l2FootprintPerCuBytes = 28.0 * 1024; // ...until CUs thrash
        p.rowHitFraction = 0.3;
        p.mlpPerWave = 3.0;
        p.streamEfficiency = 0.65;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "FindRangeK";
        k.resources.vgprPerWorkitem = 44;
        k.resources.sgprPerWave = 34;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 256.0 * 1024;
        p.aluInstsPerItem = 34.0;
        p.fetchInstsPerItem = 10.0; // range scan touches siblings
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.35;
        p.coalescing = 0.22;
        p.l2HitBase = 0.5;
        p.l2FootprintPerCuBytes = 30.0 * 1024;
        p.rowHitFraction = 0.3;
        p.mlpPerWave = 3.0;
        p.streamEfficiency = 0.65;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
