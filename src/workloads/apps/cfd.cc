/**
 * @file
 * CFD (Rodinia): unstructured-grid Euler solver.
 *
 * Signature (Section 7.1): the flux kernel's indirect neighbor
 * accesses pollute the L2 at full CU count; Harmonia recovers ~3%
 * performance by reducing active CUs. ComputeFlux is also occupancy
 * limited by its large register footprint. Long iterative run (the
 * solver sweeps many time steps), good for FG convergence.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeCfd()
{
    Application app;
    app.name = "CFD";
    app.iterations = 20;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "ComputeFlux";
        k.resources.vgprPerWorkitem = 60; // occupancy limited: 4 waves
        k.resources.sgprPerWave = 40;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 75.0;
        p.fetchInstsPerItem = 5.0; // neighbor gathers
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.20;
        p.coalescing = 0.6;
        p.l2HitBase = 0.5;
        p.l2FootprintPerCuBytes = 27.0 * 1024; // mild thrashing
        p.rowHitFraction = 0.5;
        p.mlpPerWave = 4.0;
        p.streamEfficiency = 0.75;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "ComputeStepFactor";
        k.resources.vgprPerWorkitem = 28;
        k.resources.sgprPerWave = 24;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 20.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.05;
        p.coalescing = 0.8;
        p.l2HitBase = 0.4;
        p.l2FootprintPerCuBytes = 10.0 * 1024;
        p.mlpPerWave = 4.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "TimeStep";
        k.resources.vgprPerWorkitem = 20;
        k.resources.sgprPerWave = 18;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 256.0 * 1024;
        p.aluInstsPerItem = 10.0;
        p.fetchInstsPerItem = 1.5;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.0;
        p.coalescing = 0.9;
        p.l2HitBase = 0.3;
        p.l2FootprintPerCuBytes = 6.0 * 1024;
        p.mlpPerWave = 4.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
