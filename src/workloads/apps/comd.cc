/**
 * @file
 * CoMD (exascale molecular-dynamics proxy).
 *
 * Signature (Sections 3.5 and 7.1): EAM_Force_1 is compute-heavy with
 * phases less sensitive to memory bandwidth, so Harmonia can reduce
 * the memory bus frequency "just enough" without exposing latency.
 * AdvanceVelocity has 100% kernel occupancy (VGPRs are not limiting),
 * giving high memory-level parallelism and high bandwidth sensitivity
 * (Figure 7). AdvancePosition is a light streaming update.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeComd()
{
    Application app;
    app.name = "CoMD";
    app.iterations = 10;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "EAM_Force_1";
        k.resources.vgprPerWorkitem = 40;
        k.resources.sgprPerWave = 36;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 260.0; // interpolation + force math
        p.fetchInstsPerItem = 3.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.12; // neighbor-list tail effects
        p.coalescing = 0.8;
        p.l2HitBase = 0.45;
        p.l2FootprintPerCuBytes = 14.0 * 1024;
        p.mlpPerWave = 2.5;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "AdvanceVelocity";
        k.resources.vgprPerWorkitem = 24; // not limiting: 100% occupancy
        k.resources.sgprPerWave = 20;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 18.0;
        p.fetchInstsPerItem = 4.0;  // positions, velocities, forces
        p.writeInstsPerItem = 2.0;
        p.branchDivergence = 0.0;
        p.coalescing = 0.9;
        p.l2HitBase = 0.12;
        p.l2FootprintPerCuBytes = 6.0 * 1024;
        p.mlpPerWave = 6.0;         // deep MLP from full occupancy
        p.streamEfficiency = 0.88;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "AdvancePosition";
        k.resources.vgprPerWorkitem = 20;
        k.resources.sgprPerWave = 18;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 12.0;
        p.fetchInstsPerItem = 3.0;
        p.writeInstsPerItem = 3.0;
        p.branchDivergence = 0.0;
        p.coalescing = 0.9;
        p.l2HitBase = 0.15;
        p.l2FootprintPerCuBytes = 6.0 * 1024;
        p.mlpPerWave = 5.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
