/**
 * @file
 * DeviceMemory (SHOC): the memory-limit stress benchmark.
 *
 * Signature (Sections 3.2 and 3.5, Figures 3b/9): performance
 * saturates once hardware ops/byte reaches ~4x the minimum
 * configuration (the balance knee); very poor L2 hit rate keeps the
 * L2->MC clock-domain crossing on the critical path, so the kernel
 * stays compute-frequency sensitive at low compute clocks despite
 * being memory bound. Full occupancy and deep MLP.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeDeviceMemory()
{
    Application app;
    app.name = "DeviceMemory";
    app.iterations = 8;

    KernelProfile k;
    k.app = app.name;
    k.name = "ReadWrite";
    k.resources.vgprPerWorkitem = 16; // full occupancy
    k.resources.sgprPerWave = 16;
    k.resources.workgroupSize = 256;

    KernelPhase &p = k.basePhase;
    p.workItems = 4.0 * 1024 * 1024;
    p.aluInstsPerItem = 60.0;  // address math; knee at ~4x min ops/byte
    p.fetchInstsPerItem = 4.0;
    p.writeInstsPerItem = 1.0;
    p.branchDivergence = 0.0;
    p.coalescing = 1.0;        // fully coalesced streaming
    p.l2HitBase = 0.05;        // streams straight through the L2
    p.l2FootprintPerCuBytes = 4.0 * 1024;
    p.rowHitFraction = 0.8;
    p.mlpPerWave = 6.0;
    p.streamEfficiency = 0.9;

    app.kernels.push_back(std::move(k));
    app.validate();
    return app;
}

} // namespace harmonia
