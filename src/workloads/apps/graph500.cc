/**
 * @file
 * Graph500: breadth-first search with strongly time-varying phases.
 *
 * Signature (Section 7.2, Figures 14-16): the ops/byte demand swings
 * from 0.64 to bursts of 264 as the BFS frontier grows and collapses
 * over eight iterations; branch divergence is significant, so compute
 * sensitivity stays high ~95% of the time (Harmonia pins the CU
 * frequency at maximum) while bandwidth sensitivity alternates between
 * medium and low, making the memory bus dither between states.
 */

#include <algorithm>

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

namespace
{

/** Frontier-size profile over the 8 BFS levels (fraction of peak).
 * The paper's BottomStepUp iterations span 0.9 to 5.6 seconds — a
 * ~6x swing — which this profile mirrors. */
constexpr double kFrontierScale[8] = {0.25, 0.60, 1.00, 0.90,
                                      0.65, 0.40, 0.25, 0.16};

/** ALU work per item per level: dense levels do bitmap math (high
 * ops/byte bursts), sparse levels chase edges (low ops/byte). */
constexpr double kAluPerItem[8] = {350.0, 220.0, 130.0, 120.0,
                                   140.0, 190.0, 260.0, 350.0};

/** Memory reads per item per level. */
constexpr double kFetchPerItem[8] = {2.0, 2.5, 3.0, 3.0,
                                     3.0, 2.5, 2.0, 2.0};

int
levelOf(int iteration)
{
    return iteration % 8;
}

} // namespace

Application
makeGraph500()
{
    Application app;
    app.name = "Graph500";
    app.iterations = 8; // Figure 14 shows eight successive iterations

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "TopDownStep";
        k.resources.vgprPerWorkitem = 36;
        k.resources.sgprPerWave = 30;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 140.0;
        p.fetchInstsPerItem = 2.5;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.45;
        p.divergenceSerialization = 1.6;
        p.coalescing = 0.6;
        p.l2HitBase = 0.4;
        p.l2FootprintPerCuBytes = 16.0 * 1024;
        p.rowHitFraction = 0.4;
        p.mlpPerWave = 4.0;
        p.streamEfficiency = 0.65;
        k.phaseFn = [](const KernelPhase &base, int iter) {
            KernelPhase p2 = base;
            p2.workItems = std::max(
                1024.0, base.workItems * kFrontierScale[levelOf(iter)]);
            return p2;
        };
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "BottomStepUp";
        k.resources.vgprPerWorkitem = 36;
        k.resources.sgprPerWave = 32;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 2048.0 * 1024;
        p.aluInstsPerItem = 90.0;
        p.fetchInstsPerItem = 5.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.50;
        p.divergenceSerialization = 1.6;
        p.coalescing = 0.7;
        p.l2HitBase = 0.5;
        p.l2FootprintPerCuBytes = 14.0 * 1024;
        p.rowHitFraction = 0.4;
        p.mlpPerWave = 4.0;
        p.streamEfficiency = 0.65;
        k.phaseFn = [](const KernelPhase &base, int iter) {
            const int level = levelOf(iter);
            KernelPhase p2 = base;
            p2.workItems = std::max(
                1024.0, base.workItems * kFrontierScale[level]);
            p2.aluInstsPerItem = kAluPerItem[level];
            p2.fetchInstsPerItem = kFetchPerItem[level];
            return p2;
        };
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "BitmapConstruct";
        k.resources.vgprPerWorkitem = 20;
        k.resources.sgprPerWave = 20;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 32.0 * 1024;
        p.aluInstsPerItem = 15.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 2.0;
        p.branchDivergence = 0.1;
        p.coalescing = 0.8;
        p.l2HitBase = 0.3;
        p.l2FootprintPerCuBytes = 8.0 * 1024;
        p.mlpPerWave = 5.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
