/**
 * @file
 * LUD (Rodinia): dense LU matrix decomposition.
 *
 * Signature (Figure 3c): compute-bound at high memory bandwidth, with
 * the best balance point around 15x the minimum hardware ops/byte.
 * Three kernels per step — a small divergent diagonal factorization, a
 * medium perimeter update, and a large internal update that dominates.
 * Work shrinks as the factorization proceeds (trailing submatrix),
 * which we express through the iteration phase functions.
 */

#include <algorithm>
#include <cmath>

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

namespace
{

/** Trailing-submatrix shrink factor for iteration i of n. */
double
ludShrink(int iteration, int total)
{
    const double frac =
        1.0 - static_cast<double>(iteration) / (total + 1);
    return std::max(0.15, std::pow(frac, 1.5));
}

} // namespace

Application
makeLud()
{
    Application app;
    app.name = "LUD";
    app.iterations = 12;
    const int totalIters = app.iterations;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Diagonal";
        k.resources.vgprPerWorkitem = 44;
        k.resources.sgprPerWave = 32;
        k.resources.ldsPerWorkgroupBytes = 8 * 1024;
        k.resources.workgroupSize = 64;
        KernelPhase &p = k.basePhase;
        p.workItems = 64.0 * 1024;
        p.aluInstsPerItem = 150.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.40; // triangular loop bounds
        p.divergenceSerialization = 1.2;
        p.coalescing = 0.8;
        p.l2HitBase = 0.6;
        p.l2FootprintPerCuBytes = 8.0 * 1024;
        p.mlpPerWave = 2.0;
        k.phaseFn = [totalIters](const KernelPhase &base, int iter) {
            KernelPhase p2 = base;
            p2.workItems =
                std::max(64.0, base.workItems * ludShrink(iter,
                                                          totalIters));
            return p2;
        };
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Perimeter";
        k.resources.vgprPerWorkitem = 36;
        k.resources.sgprPerWave = 28;
        k.resources.ldsPerWorkgroupBytes = 8 * 1024;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 256.0 * 1024;
        p.aluInstsPerItem = 110.0;
        p.fetchInstsPerItem = 2.5;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.25;
        p.coalescing = 0.85;
        p.l2HitBase = 0.55;
        p.l2FootprintPerCuBytes = 12.0 * 1024;
        p.mlpPerWave = 2.5;
        k.phaseFn = [totalIters](const KernelPhase &base, int iter) {
            KernelPhase p2 = base;
            p2.workItems =
                std::max(128.0, base.workItems * ludShrink(iter,
                                                           totalIters));
            return p2;
        };
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Internal";
        k.resources.vgprPerWorkitem = 28; // high occupancy (blocked GEMM)
        k.resources.sgprPerWave = 24;
        k.resources.ldsPerWorkgroupBytes = 8 * 1024;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 120.0; // ops/byte ~ 11: knee near 15x min
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.05;
        p.coalescing = 0.9;
        p.l2HitBase = 0.5;         // blocked reuse through the LDS/L2
        p.l2FootprintPerCuBytes = 16.0 * 1024;
        p.mlpPerWave = 3.0;
        k.phaseFn = [totalIters](const KernelPhase &base, int iter) {
            KernelPhase p2 = base;
            p2.workItems =
                std::max(256.0, base.workItems * ludShrink(iter,
                                                           totalIters));
            return p2;
        };
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
