/**
 * @file
 * MaxFlops (SHOC): the compute-limit stress benchmark.
 *
 * Signature (Section 3.2, Figure 3a): performance scales linearly with
 * compute throughput at any memory configuration; essentially no
 * memory traffic, so the lowest memory bandwidth costs nothing and is
 * the most energy-efficient. Full occupancy, no divergence.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeMaxFlops()
{
    Application app;
    app.name = "MaxFlops";
    app.iterations = 8;

    KernelProfile k;
    k.app = app.name;
    k.name = "MaxFlops";
    k.resources.vgprPerWorkitem = 24; // 10 waves/SIMD: full occupancy
    k.resources.sgprPerWave = 16;
    k.resources.ldsPerWorkgroupBytes = 0;
    k.resources.workgroupSize = 256;

    KernelPhase &p = k.basePhase;
    p.workItems = 2.0 * 1024 * 1024;
    p.aluInstsPerItem = 400.0;    // dense FMA chains
    p.fetchInstsPerItem = 0.05;   // one initial load per unrolled block
    p.writeInstsPerItem = 0.01;   // single result store
    p.branchDivergence = 0.0;
    p.coalescing = 1.0;
    p.l2HitBase = 0.8;            // the few accesses hit
    p.l2FootprintPerCuBytes = 2.0 * 1024;
    p.rowHitFraction = 0.9;
    p.mlpPerWave = 1.0;
    p.streamEfficiency = 0.9;

    app.kernels.push_back(std::move(k));
    app.validate();
    return app;
}

} // namespace harmonia
