/**
 * @file
 * miniFE (finite-element proxy): conjugate-gradient solve dominated by
 * a sparse matrix-vector product plus two streaming vector kernels.
 * MatVec has irregular column gathers (partial coalescing); Dot and
 * Waxpby are bandwidth-bound streams with deep MLP.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeMiniFe()
{
    Application app;
    app.name = "miniFE";
    app.iterations = 15;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "MatVec";
        k.resources.vgprPerWorkitem = 32;
        k.resources.sgprPerWave = 28;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 16.0;
        p.fetchInstsPerItem = 5.0; // row ptr, cols, vals, x gathers
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.15; // row-length imbalance
        p.coalescing = 0.5;
        p.l2HitBase = 0.35;
        p.l2FootprintPerCuBytes = 20.0 * 1024;
        p.rowHitFraction = 0.5;
        p.mlpPerWave = 5.0;
        p.streamEfficiency = 0.75;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Dot";
        k.resources.vgprPerWorkitem = 16;
        k.resources.sgprPerWave = 16;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 8.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.01;
        p.branchDivergence = 0.0;
        p.coalescing = 1.0;
        p.l2HitBase = 0.1;
        p.l2FootprintPerCuBytes = 4.0 * 1024;
        p.mlpPerWave = 6.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Waxpby";
        k.resources.vgprPerWorkitem = 16;
        k.resources.sgprPerWave = 16;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 6.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.0;
        p.coalescing = 1.0;
        p.l2HitBase = 0.05;
        p.l2FootprintPerCuBytes = 4.0 * 1024;
        p.mlpPerWave = 6.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
