/**
 * @file
 * Sort (SHOC): radix sort.
 *
 * Signature (Sections 3.5 and 7.1, Figures 7/8): BottomScan uses 66
 * VGPRs per work-item, limiting occupancy to 3 waves/SIMD (30%). The
 * resulting shallow memory-level parallelism makes it *insensitive* to
 * memory bus frequency (Harmonia drops the bus to 475 MHz for a ~12%
 * card-power saving with no performance loss), while its >2M dynamic
 * instructions with serialization from load imbalance keep it highly
 * compute-frequency sensitive despite only 6% branch divergence.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeSort()
{
    Application app;
    app.name = "Sort";
    app.iterations = 10;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "BottomScan";
        k.resources.vgprPerWorkitem = 66; // -> 3 waves/SIMD, 30% occ.
        k.resources.sgprPerWave = 40;
        k.resources.ldsPerWorkgroupBytes = 16 * 1024;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 135.0; // > 2M wave instructions total
        p.fetchInstsPerItem = 1.2;
        p.writeInstsPerItem = 0.6;
        p.branchDivergence = 0.06;
        p.divergenceSerialization = 2.0; // digit-bucket imbalance
        p.coalescing = 0.9;
        p.l2HitBase = 0.5;
        p.l2FootprintPerCuBytes = 8.0 * 1024;
        p.rowHitFraction = 0.6;
        p.mlpPerWave = 0.8; // shallow MLP from low occupancy
        p.streamEfficiency = 0.8;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "TopScan";
        k.resources.vgprPerWorkitem = 32;
        k.resources.sgprPerWave = 24;
        k.resources.ldsPerWorkgroupBytes = 8 * 1024;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 32.0 * 1024; // single-workgroup-style scan
        p.aluInstsPerItem = 30.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.15;
        p.coalescing = 1.0;
        p.l2HitBase = 0.6;
        p.l2FootprintPerCuBytes = 2.0 * 1024;
        p.mlpPerWave = 2.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Reduce";
        k.resources.vgprPerWorkitem = 20;
        k.resources.sgprPerWave = 18;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 10.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.3;
        p.branchDivergence = 0.05;
        p.coalescing = 1.0;
        p.l2HitBase = 0.1;
        p.l2FootprintPerCuBytes = 4.0 * 1024;
        p.mlpPerWave = 6.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
