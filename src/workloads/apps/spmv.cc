/**
 * @file
 * SPMV (SHOC): sparse matrix-vector multiply (CSR scalar kernel).
 *
 * Signature (Section 7.2, Figure 18): irregular column gathers with
 * poor coalescing and moderate L2 pollution. A kernel where CG
 * prediction alone leaves savings on the table or overshoots — the
 * paper calls out LUD and SPMV as the cases where the FG loop's
 * performance feedback is crucial.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeSpmv()
{
    Application app;
    app.name = "SPMV";
    app.iterations = 12;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "CsrScalar";
        k.resources.vgprPerWorkitem = 30;
        k.resources.sgprPerWave = 26;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 14.0;
        p.fetchInstsPerItem = 6.0; // row ptrs, cols, vals, x gathers
        p.writeInstsPerItem = 0.3;
        p.branchDivergence = 0.25; // row-length variance
        p.coalescing = 0.35;
        p.l2HitBase = 0.42;
        p.l2FootprintPerCuBytes = 22.0 * 1024;
        p.rowHitFraction = 0.45;
        p.mlpPerWave = 5.0;
        p.streamEfficiency = 0.7;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
