/**
 * @file
 * SRAD (Rodinia): speckle-reducing anisotropic diffusion.
 *
 * Signature (Section 3.5, Figure 8): the Prepare kernel has ~75%
 * branch divergence but only 8 ALU instructions, so despite the
 * divergence it is dominated by launch overhead and shows almost no
 * compute-frequency sensitivity — divergence alone does not imply
 * sensitivity. The two diffusion kernels are medium streaming
 * stencils; Reduce is a small tree reduction.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeSrad()
{
    Application app;
    app.name = "SRAD";
    app.iterations = 16;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Prepare";
        k.resources.vgprPerWorkitem = 12;
        k.resources.sgprPerWave = 12;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 16.0 * 1024; // tiny kernel
        p.aluInstsPerItem = 8.0;   // the paper's "only 8 ALU" example
        p.fetchInstsPerItem = 1.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.75; // boundary-condition masking
        p.divergenceSerialization = 1.2;
        p.coalescing = 0.9;
        p.l2HitBase = 0.5;
        p.l2FootprintPerCuBytes = 2.0 * 1024;
        p.mlpPerWave = 2.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Reduce";
        k.resources.vgprPerWorkitem = 16;
        k.resources.sgprPerWave = 16;
        k.resources.ldsPerWorkgroupBytes = 4 * 1024;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 64.0 * 1024;
        p.aluInstsPerItem = 12.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.1;
        p.branchDivergence = 0.30; // tree-reduction lane retirement
        p.coalescing = 1.0;
        p.l2HitBase = 0.3;
        p.l2FootprintPerCuBytes = 4.0 * 1024;
        p.mlpPerWave = 4.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Srad1";
        k.resources.vgprPerWorkitem = 28;
        k.resources.sgprPerWave = 24;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 40.0;
        p.fetchInstsPerItem = 4.0; // 4-neighbor stencil
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.10;
        p.coalescing = 0.85;
        p.l2HitBase = 0.4;
        p.l2FootprintPerCuBytes = 10.0 * 1024;
        p.mlpPerWave = 4.0;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Srad2";
        k.resources.vgprPerWorkitem = 26;
        k.resources.sgprPerWave = 22;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 512.0 * 1024;
        p.aluInstsPerItem = 35.0;
        p.fetchInstsPerItem = 4.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.08;
        p.coalescing = 0.85;
        p.l2HitBase = 0.4;
        p.l2FootprintPerCuBytes = 10.0 * 1024;
        p.mlpPerWave = 4.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
