/**
 * @file
 * Stencil (SHOC): 2D 9-point stencil sweep.
 *
 * Signature (Section 7.1, Figure 12): the paper's largest card-power
 * saving (~19%). Moderate compute per point with high streaming
 * bandwidth demand means the balance point uses far fewer than 32 CUs
 * — Harmonia power gates CUs (the big saving) and trims the memory
 * bus to what the remaining compute can consume.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeStencil()
{
    Application app;
    app.name = "Stencil";
    app.iterations = 12;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "Stencil9";
        k.resources.vgprPerWorkitem = 25; // full occupancy
        k.resources.sgprPerWave = 20;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 2.0 * 1024 * 1024;
        p.aluInstsPerItem = 12.0;  // few FLOPs per point: streaming
        p.fetchInstsPerItem = 4.0; // halo reads beyond the LDS tile
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.04; // boundary rows
        p.coalescing = 0.95;
        p.l2HitBase = 0.5;         // row reuse across workgroups
        p.l2FootprintPerCuBytes = 8.0 * 1024;
        p.rowHitFraction = 0.85;
        p.mlpPerWave = 5.0;
        p.streamEfficiency = 0.88;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
