/**
 * @file
 * Streamcluster (Rodinia): online clustering.
 *
 * Signature (Section 7.1, Figure 13): its bandwidth sensitivity sits
 * just below the HIGH bin boundary — the "edge effect of sensitivity
 * binning". Coarse-grain tuning alone therefore under-provisions the
 * memory bus and loses up to ~27% performance; the feedback-driven FG
 * loop recovers it to a ~3.6% loss. The kernel is tuned so memory time
 * is ~0.86x of compute time at the maximum configuration, which lands
 * the measured bandwidth sensitivity near 0.69.
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeStreamcluster()
{
    Application app;
    app.name = "Streamcluster";
    app.iterations = 14;

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "PGain";
        k.resources.vgprPerWorkitem = 24;
        k.resources.sgprPerWave = 22;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 1024.0 * 1024;
        p.aluInstsPerItem = 300.0; // distance computations
        p.fetchInstsPerItem = 5.0;
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.10;
        p.coalescing = 0.8;
        p.l2HitBase = 0.2;
        p.l2FootprintPerCuBytes = 6.0 * 1024;
        p.rowHitFraction = 0.65;
        p.mlpPerWave = 6.0;
        p.streamEfficiency = 0.55; // strided centroids cap the bus
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "CenterShift";
        k.resources.vgprPerWorkitem = 20;
        k.resources.sgprPerWave = 18;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 128.0 * 1024;
        p.aluInstsPerItem = 18.0;
        p.fetchInstsPerItem = 3.0;
        p.writeInstsPerItem = 1.0;
        p.branchDivergence = 0.15;
        p.coalescing = 0.9;
        p.l2HitBase = 0.3;
        p.l2FootprintPerCuBytes = 6.0 * 1024;
        p.mlpPerWave = 5.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
