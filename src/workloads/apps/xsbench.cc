/**
 * @file
 * XSBench (Monte-Carlo neutron-transport proxy).
 *
 * Signature (Sections 1 and 7): memory-intensive random cross-section
 * table lookups with heavy memory divergence and L2 pollution — one of
 * the three applications where Harmonia *improves* performance (~3%)
 * by power gating CUs to reduce interference in the shared L2. Runs
 * only 2 iterations per kernel, which stresses the CG loop's ability
 * to act in a single step (Section 7.2).
 */

#include "harmonia/workloads/suite.hh"

namespace harmonia
{

Application
makeXsbench()
{
    Application app;
    app.name = "XSBench";
    app.iterations = 2; // the paper notes only 2 iterations per kernel

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "LookupMacroXS";
        k.resources.vgprPerWorkitem = 48;
        k.resources.sgprPerWave = 40;
        k.resources.workgroupSize = 128;
        KernelPhase &p = k.basePhase;
        p.workItems = 2.0 * 1024 * 1024;
        p.aluInstsPerItem = 45.0;   // interpolation per nuclide
        p.fetchInstsPerItem = 6.0;  // random grid-point gathers
        p.writeInstsPerItem = 0.5;
        p.branchDivergence = 0.35;
        p.coalescing = 0.3;         // severe memory divergence
        p.l2HitBase = 0.60;
        p.l2FootprintPerCuBytes = 30.0 * 1024; // thrashes at 32 CUs
        p.rowHitFraction = 0.35;    // random rows
        p.mlpPerWave = 4.0;
        p.streamEfficiency = 0.75;
        app.kernels.push_back(std::move(k));
    }

    {
        KernelProfile k;
        k.app = app.name;
        k.name = "ReduceTallies";
        k.resources.vgprPerWorkitem = 24;
        k.resources.sgprPerWave = 20;
        k.resources.workgroupSize = 256;
        KernelPhase &p = k.basePhase;
        p.workItems = 256.0 * 1024;
        p.aluInstsPerItem = 14.0;
        p.fetchInstsPerItem = 2.0;
        p.writeInstsPerItem = 0.2;
        p.branchDivergence = 0.1;
        p.coalescing = 1.0;
        p.l2HitBase = 0.2;
        p.l2FootprintPerCuBytes = 4.0 * 1024;
        p.mlpPerWave = 5.0;
        app.kernels.push_back(std::move(k));
    }

    app.validate();
    return app;
}

} // namespace harmonia
