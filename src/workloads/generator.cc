#include "generator.hh"

#include <algorithm>
#include <cmath>

#include "harmonia/common/error.hh"

namespace harmonia
{

WorkloadGenerator::WorkloadGenerator(uint64_t seed, GeneratorConfig config)
    : rng_(seed), config_(config)
{
    fatalIf(config_.minWorkItems <= 0.0 ||
                config_.maxWorkItems < config_.minWorkItems,
            "WorkloadGenerator: bad work-item bounds");
    fatalIf(config_.maxDivergence < 0.0 || config_.maxDivergence >= 1.0,
            "WorkloadGenerator: maxDivergence must be in [0, 1)");
}

KernelProfile
WorkloadGenerator::randomKernel(const std::string &app,
                                const std::string &name)
{
    KernelProfile k;
    k.app = app;
    k.name = name;
    k.resources.vgprPerWorkitem =
        static_cast<int>(rng_.uniformInt(8, config_.maxVgpr));
    k.resources.sgprPerWave =
        static_cast<int>(rng_.uniformInt(8, config_.maxSgpr));
    k.resources.ldsPerWorkgroupBytes = rng_.chance(0.3)
        ? static_cast<int>(rng_.uniformInt(1, 32)) * 1024
        : 0;
    const int wgChoices[] = {64, 128, 192, 256};
    k.resources.workgroupSize =
        wgChoices[rng_.uniformInt(0, 3)];

    KernelPhase &p = k.basePhase;
    p.workItems = std::floor(
        rng_.uniform(config_.minWorkItems, config_.maxWorkItems));
    p.aluInstsPerItem = rng_.uniform(1.0, config_.maxAluPerItem);
    p.fetchInstsPerItem = rng_.uniform(0.0, config_.maxFetchPerItem);
    p.writeInstsPerItem = rng_.uniform(0.0, config_.maxWritePerItem);
    if (p.fetchInstsPerItem + p.writeInstsPerItem <= 0.01)
        p.fetchInstsPerItem = 0.1; // keep the kernel well formed
    p.branchDivergence = rng_.uniform(0.0, config_.maxDivergence);
    p.divergenceSerialization = rng_.uniform(0.5, 2.0);
    p.coalescing = rng_.uniform(0.15, 1.0);
    p.l2HitBase = rng_.uniform(0.0, 0.9);
    p.l2FootprintPerCuBytes = rng_.uniform(1.0, 64.0) * 1024.0;
    p.rowHitFraction = rng_.uniform(0.2, 0.95);
    p.mlpPerWave = rng_.uniform(0.2, 8.0);
    p.streamEfficiency = rng_.uniform(0.5, 1.0);
    p.validate();
    return k;
}

Application
WorkloadGenerator::randomApp(const std::string &name, int kernelCount,
                             int iterations)
{
    fatalIf(kernelCount <= 0,
            "WorkloadGenerator: kernelCount must be positive");
    fatalIf(iterations <= 0,
            "WorkloadGenerator: iterations must be positive");
    Application app;
    app.name = name;
    app.iterations = iterations;
    for (int i = 0; i < kernelCount; ++i)
        app.kernels.push_back(
            randomKernel(name, "k" + std::to_string(i)));
    app.validate();
    return app;
}

} // namespace harmonia
