/**
 * @file
 * Random synthetic kernel generator.
 *
 * Produces well-formed kernels spanning the whole behaviour space
 * (compute bound to memory bound, any occupancy, any divergence) for
 * property-based tests and robustness sweeps of the governors. All
 * randomness flows through an explicit Rng, so every generated kernel
 * is reproducible from a seed.
 */

#ifndef HARMONIA_WORKLOADS_GENERATOR_HH
#define HARMONIA_WORKLOADS_GENERATOR_HH

#include "harmonia/common/rng.hh"
#include "harmonia/timing/kernel_profile.hh"
#include "harmonia/workloads/app.hh"

namespace harmonia
{

/** Bounds for generated kernels. */
struct GeneratorConfig
{
    double minWorkItems = 16.0 * 1024;
    double maxWorkItems = 4.0 * 1024 * 1024;
    double maxAluPerItem = 400.0;
    double maxFetchPerItem = 10.0;
    double maxWritePerItem = 4.0;
    double maxDivergence = 0.8;
    int maxVgpr = 128;
    int maxSgpr = 64;
};

/**
 * Generates random kernels and applications.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(uint64_t seed,
                               GeneratorConfig config = {});

    /** One random, validated kernel named @p app . @p name. */
    KernelProfile randomKernel(const std::string &app,
                               const std::string &name);

    /** A random application with @p kernelCount kernels. */
    Application randomApp(const std::string &name, int kernelCount,
                          int iterations);

  private:
    Rng rng_;
    GeneratorConfig config_;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOADS_GENERATOR_HH
