#include "harmonia/workloads/suite.hh"

#include "harmonia/common/error.hh"

namespace harmonia
{

std::vector<Application>
standardSuite()
{
    return {
        makeComd(),     makeXsbench(),      makeMiniFe(),
        makeGraph500(), makeBpt(),          makeCfd(),
        makeLud(),      makeSrad(),         makeStreamcluster(),
        makeStencil(),  makeSort(),         makeSpmv(),
        makeMaxFlops(), makeDeviceMemory(),
    };
}

std::vector<Application>
suiteWithoutStress()
{
    std::vector<Application> out;
    for (auto &app : standardSuite()) {
        if (app.name != "MaxFlops" && app.name != "DeviceMemory")
            out.push_back(std::move(app));
    }
    return out;
}

Application
appByName(const std::string &name)
{
    for (auto &app : standardSuite()) {
        if (app.name == name)
            return app;
    }
    fatal("appByName: no application named '", name, "'");
}

} // namespace harmonia
