/**
 * @file
 * Per-application signature tests: each application in the suite must
 * exhibit the behaviour the paper documents for its real counterpart,
 * measured end-to-end on the device model (not just asserted on the
 * profile parameters).
 */

#include <gtest/gtest.h>

#include "harmonia/core/sensitivity.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

SensitivityVector
sens(const std::string &app, const std::string &kernel)
{
    return measureSensitivities(device(),
                                appByName(app).kernel(kernel), 0);
}

} // namespace

TEST(AppSignature, MaxFlopsPerfScalesTo26xMinConfig)
{
    // Figure 3a: normalized performance reaches ~27x.
    const KernelProfile k = makeMaxFlops().kernels.front();
    const double tMin =
        device().run(k, 0, device().space().minConfig()).time();
    const double tMax =
        device().run(k, 0, device().space().maxConfig()).time();
    EXPECT_NEAR(tMin / tMax, 26.7, 1.5);
}

TEST(AppSignature, DeviceMemoryBalanceKneeNearFourX)
{
    // Figure 3b: performance saturates at normalized hardware
    // ops/byte ~4 on the max-memory curve.
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const ConfigSpace &space = device().space();
    double bestPerf = 0.0;
    for (const auto &cfg : space.allConfigs()) {
        if (cfg.memFreqMhz != 1375)
            continue;
        bestPerf =
            std::max(bestPerf, 1.0 / device().run(k, 0, cfg).time());
    }
    // Find the smallest normalized ops/byte reaching 95% of best.
    double kneeOb = 1e9;
    for (const auto &cfg : space.allConfigs()) {
        if (cfg.memFreqMhz != 1375)
            continue;
        const double perf = 1.0 / device().run(k, 0, cfg).time();
        if (perf >= 0.95 * bestPerf)
            kneeOb = std::min(kneeOb,
                              space.normalizedOpsPerByte(cfg));
    }
    EXPECT_GT(kneeOb, 2.0);
    EXPECT_LT(kneeOb, 6.5);
}

TEST(AppSignature, ComdEamForceIsComputeBoundAdvanceVelocityIsNot)
{
    const SensitivityVector eam = sens("CoMD", "EAM_Force_1");
    const SensitivityVector vel = sens("CoMD", "AdvanceVelocity");
    EXPECT_GT(eam.compute(), 0.7);
    EXPECT_LT(eam.memBandwidth, 0.2);
    EXPECT_GT(vel.memBandwidth, 0.7);
    EXPECT_LT(vel.compute(), 0.3);
}

TEST(AppSignature, XsbenchGainsFromCuGating)
{
    // Section 7.1: lowering active CUs improves XSBench performance.
    const KernelProfile k = appByName("XSBench").kernel("LookupMacroXS");
    const double t32 = device().run(k, 0, {32, 1000, 1375}).time();
    const double t20 = device().run(k, 0, {20, 1000, 1375}).time();
    EXPECT_LT(t20, t32);
}

TEST(AppSignature, CfdComputeFluxMildThrashRelief)
{
    const KernelProfile k = appByName("CFD").kernel("ComputeFlux");
    const double t32 = device().run(k, 0, {32, 1000, 1375}).time();
    const double t24 = device().run(k, 0, {24, 1000, 1375}).time();
    // Mild effect: fewer CUs must not cost more than ~3%.
    EXPECT_LT(t24, t32 * 1.03);
}

TEST(AppSignature, SortBottomScanToleratesMinimumMemoryFrequency)
{
    // Section 7.1: memory bus down to 475 MHz without hurting
    // performance (low occupancy -> shallow MLP).
    const KernelProfile k = appByName("Sort").kernel("BottomScan");
    const double tHi = device().run(k, 0, {32, 1000, 1375}).time();
    const double tLo = device().run(k, 0, {32, 1000, 475}).time();
    EXPECT_LT(tLo / tHi, 1.10);
}

TEST(AppSignature, StencilToleratesCuGating)
{
    // Stencil is the big power-saving case: CU count can fall well
    // below 32 without performance loss.
    const KernelProfile k = appByName("Stencil").kernel("Stencil9");
    const double t32 = device().run(k, 0, {32, 1000, 1375}).time();
    const double t16 = device().run(k, 0, {16, 1000, 1375}).time();
    EXPECT_LT(t16 / t32, 1.05);
}

TEST(AppSignature, StreamclusterPgainNarrowlyMissesHighBin)
{
    // Section 7.1: the CG-only outlier comes from the bandwidth
    // sensitivity landing just below the HIGH boundary (0.70).
    const SensitivityVector s = sens("Streamcluster", "PGain");
    EXPECT_GT(s.memBandwidth, 0.5);
    EXPECT_LE(s.memBandwidth, 0.70);
    EXPECT_EQ(binOf(s.memBandwidth), SensitivityBin::Med);
}

TEST(AppSignature, Graph500ComputeSensitivityHighAcrossLevels)
{
    // Section 7.2: compute sensitivity is high ~95% of the time.
    const KernelProfile k =
        appByName("Graph500").kernel("BottomStepUp");
    int high = 0;
    for (int iter = 0; iter < 8; ++iter) {
        const SensitivityVector s =
            measureSensitivities(device(), k, iter);
        high += s.compute() > 0.6;
    }
    EXPECT_GE(high, 6);
}

TEST(AppSignature, Graph500BandwidthDemandVariesAcrossLevels)
{
    // The per-level bandwidth *demand* (icActivity, what the online
    // predictor keys on) must swing enough across BFS levels to make
    // the memory-frequency bin dither, per Figures 15/16.
    const KernelProfile k =
        appByName("Graph500").kernel("BottomStepUp");
    double lo = 1e9;
    double hi = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
        const double icAct =
            device()
                .run(k, iter, device().space().maxConfig())
                .timing.counters.icActivity;
        lo = std::min(lo, icAct);
        hi = std::max(hi, icAct);
    }
    EXPECT_GT(hi, 1.5 * lo);
}

TEST(AppSignature, MiniFeStreamsAreBandwidthBound)
{
    EXPECT_GT(sens("miniFE", "Dot").memBandwidth, 0.5);
    EXPECT_GT(sens("miniFE", "Waxpby").memBandwidth, 0.5);
    EXPECT_GT(sens("miniFE", "MatVec").memBandwidth, 0.7);
}

TEST(AppSignature, SpmvIsIrregularMemoryBound)
{
    const SensitivityVector s = sens("SPMV", "CsrScalar");
    EXPECT_GT(s.memBandwidth, 0.8);
    EXPECT_LT(s.compute(), 0.3);
}

TEST(AppSignature, LudInternalDominatesAndIsComputeBound)
{
    const Application app = appByName("LUD");
    const double tDiag =
        device().run(app.kernel("Diagonal"), 0,
                     device().space().maxConfig()).time();
    const double tInt =
        device().run(app.kernel("Internal"), 0,
                     device().space().maxConfig()).time();
    EXPECT_GT(tInt, tDiag);
    EXPECT_GT(sens("LUD", "Internal").compute(), 0.7);
}
