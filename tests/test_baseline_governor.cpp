/**
 * @file
 * Tests for the PowerTune-style baseline governor.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/baseline_governor.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

KernelSample
sampleAt(const HardwareConfig &cfg, double watts)
{
    KernelSample s;
    s.kernelId = "a.k";
    s.config = cfg;
    s.execTime = 1e-3;
    s.cardEnergy = watts * s.execTime;
    return s;
}

} // namespace

TEST(Baseline, AlwaysBoostWithHeadroom)
{
    // Section 7: "the baseline power management always runs at the
    // boost frequency of 1 GHz for all applications".
    const ConfigSpace space(hd7970());
    BaselineGovernor governor(space);
    const KernelProfile k = makeComd().kernels.front();
    for (int iter = 0; iter < 5; ++iter) {
        const HardwareConfig cfg = governor.decide(k, iter);
        EXPECT_EQ(cfg, space.maxConfig());
        governor.observe(sampleAt(cfg, 200.0));
    }
}

TEST(Baseline, StepsDpmDownWhenOverBudget)
{
    const ConfigSpace space(hd7970());
    BaselineGovernor governor(space, 150.0); // tight TDP
    const KernelProfile k = makeComd().kernels.front();
    HardwareConfig cfg = governor.decide(k, 0);
    for (int iter = 0; iter < 6; ++iter) {
        governor.observe(sampleAt(cfg, 220.0));
        cfg = governor.decide(k, iter + 1);
    }
    EXPECT_LT(governor.currentFreqMhz(), 1000);
    // Memory and CU count are never managed by the baseline.
    EXPECT_EQ(cfg.memFreqMhz, 1375);
    EXPECT_EQ(cfg.cuCount, 32);
}

TEST(Baseline, RecoversWhenHeadroomReturns)
{
    const ConfigSpace space(hd7970());
    BaselineGovernor governor(space, 150.0);
    const KernelProfile k = makeComd().kernels.front();
    HardwareConfig cfg = governor.decide(k, 0);
    for (int iter = 0; iter < 4; ++iter) {
        governor.observe(sampleAt(cfg, 220.0));
        cfg = governor.decide(k, iter);
    }
    EXPECT_LT(governor.currentFreqMhz(), 1000);
    for (int iter = 0; iter < 12; ++iter) {
        governor.observe(sampleAt(cfg, 80.0));
        cfg = governor.decide(k, iter);
    }
    EXPECT_EQ(governor.currentFreqMhz(), 1000);
}

TEST(Baseline, ResetRestoresBoost)
{
    const ConfigSpace space(hd7970());
    BaselineGovernor governor(space, 100.0);
    const KernelProfile k = makeComd().kernels.front();
    const HardwareConfig cfg = governor.decide(k, 0);
    governor.observe(sampleAt(cfg, 300.0));
    governor.observe(sampleAt(governor.decide(k, 1), 300.0));
    EXPECT_LT(governor.currentFreqMhz(), 1000);
    governor.reset();
    EXPECT_EQ(governor.decide(k, 0), space.maxConfig());
}

TEST(Baseline, NameAndValidation)
{
    const ConfigSpace space(hd7970());
    EXPECT_EQ(BaselineGovernor(space).name(), "Baseline");
    EXPECT_THROW(BaselineGovernor(space, 0.0), ConfigError);
}
