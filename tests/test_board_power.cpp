/**
 * @file
 * Unit tests for the board power composition (Equation 4) and the DAQ
 * measurement emulation.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/power/board_power.hh"
#include "power/daq.hh"

using namespace harmonia;

TEST(BoardPower, Equation4Composition)
{
    const BoardPowerModel board;
    GpuPowerBreakdown gpu;
    gpu.cuDynamic = 80.0;
    gpu.uncoreDynamic = 15.0;
    gpu.leakage = 25.0;
    MemPowerBreakdown mem;
    mem.background = 10.0;
    mem.phy = 10.0;
    mem.readWrite = 10.0;

    const CardPowerBreakdown card = board.compose(gpu, mem);
    EXPECT_DOUBLE_EQ(card.gpuTotal(), 120.0);
    EXPECT_DOUBLE_EQ(card.memTotal(), 30.0);
    // OtherPwr = fan + misc + VR loss fraction of (GPU + Mem).
    const double expectedOther =
        board.params().fanWatts + board.params().miscWatts +
        board.params().vrLossFraction * 150.0;
    EXPECT_DOUBLE_EQ(card.other, expectedOther);
    EXPECT_DOUBLE_EQ(card.total(), 150.0 + expectedOther);
}

TEST(BoardPower, OtherScalesWithLoad)
{
    const BoardPowerModel board;
    GpuPowerBreakdown light;
    light.cuDynamic = 10.0;
    GpuPowerBreakdown heavy;
    heavy.cuDynamic = 150.0;
    const MemPowerBreakdown mem;
    EXPECT_GT(board.compose(heavy, mem).other,
              board.compose(light, mem).other);
}

TEST(BoardPower, Validation)
{
    BoardPowerParams p;
    p.vrLossFraction = 1.0;
    EXPECT_THROW(BoardPowerModel{p}, ConfigError);
    p = BoardPowerParams{};
    p.fanWatts = -1.0;
    EXPECT_THROW(BoardPowerModel{p}, ConfigError);
}

TEST(Daq, ExactEnergyIntegration)
{
    Daq daq;
    daq.addInterval(100.0, 2.0);
    daq.addInterval(50.0, 1.0);
    EXPECT_DOUBLE_EQ(daq.energy(), 250.0);
    EXPECT_DOUBLE_EQ(daq.duration(), 3.0);
    EXPECT_NEAR(daq.averagePower(), 250.0 / 3.0, 1e-12);
}

TEST(Daq, SampledEnergyApproachesExact)
{
    // 1 kHz sampling of a piecewise-constant trace: quantization error
    // bounded by one sample per transition.
    Daq daq(1000.0);
    daq.addInterval(120.0, 0.5);
    daq.addInterval(80.0, 0.25);
    daq.addInterval(200.0, 1.0);
    EXPECT_NEAR(daq.sampledEnergy(), daq.energy(),
                0.005 * daq.energy());
    EXPECT_EQ(daq.sampleCount(), 1750u);
}

TEST(Daq, CoarseSamplerIsLessAccurate)
{
    Daq fine(10000.0);
    Daq coarse(10.0);
    for (Daq *d : {&fine, &coarse}) {
        d->addInterval(10.0, 0.123);
        d->addInterval(300.0, 0.05);
        d->addInterval(50.0, 0.2);
    }
    const double fineErr =
        std::abs(fine.sampledEnergy() - fine.energy());
    const double coarseErr =
        std::abs(coarse.sampledEnergy() - coarse.energy());
    EXPECT_LE(fineErr, coarseErr + 1e-9);
}

TEST(Daq, EmptyAndReset)
{
    Daq daq;
    EXPECT_DOUBLE_EQ(daq.averagePower(), 0.0);
    EXPECT_DOUBLE_EQ(daq.sampledEnergy(), 0.0);
    daq.addInterval(10.0, 1.0);
    daq.reset();
    EXPECT_DOUBLE_EQ(daq.energy(), 0.0);
    EXPECT_DOUBLE_EQ(daq.duration(), 0.0);
}

TEST(Daq, ZeroDurationIntervalIgnored)
{
    Daq daq;
    daq.addInterval(100.0, 0.0);
    EXPECT_DOUBLE_EQ(daq.energy(), 0.0);
}

TEST(Daq, RejectsInvalidInputs)
{
    EXPECT_THROW(Daq(0.0), ConfigError);
    Daq daq;
    EXPECT_THROW(daq.addInterval(-1.0, 1.0), ConfigError);
    EXPECT_THROW(daq.addInterval(1.0, -1.0), ConfigError);
}
