/**
 * @file
 * Unit tests for the shared-L2 interference (thrashing) model.
 */

#include <gtest/gtest.h>
#include <cmath>


#include "harmonia/common/error.hh"
#include "harmonia/timing/cache_model.hh"

using namespace harmonia;

namespace
{

KernelPhase
phaseWithFootprint(double perCuBytes, double baseHit)
{
    KernelPhase p;
    p.l2FootprintPerCuBytes = perCuBytes;
    p.l2HitBase = baseHit;
    return p;
}

} // namespace

TEST(CacheModel, NoThrashWhenFootprintFits)
{
    const CacheModel cache(hd7970());
    // 768 KB L2; 16 KB x 32 CUs = 512 KB fits.
    const KernelPhase p = phaseWithFootprint(16.0 * 1024, 0.6);
    EXPECT_DOUBLE_EQ(cache.hitRate(p, 32), 0.6);
    EXPECT_DOUBLE_EQ(cache.hitRate(p, 4), 0.6);
}

TEST(CacheModel, HitRateCollapsesBeyondCapacity)
{
    const CacheModel cache(hd7970());
    const KernelPhase p = phaseWithFootprint(48.0 * 1024, 0.6);
    // 48 KB x 32 = 1536 KB = 2x the 768 KB L2.
    const double at32 = cache.hitRate(p, 32);
    const double at16 = cache.hitRate(p, 16); // exactly fits
    EXPECT_LT(at32, 0.6);
    EXPECT_DOUBLE_EQ(at16, 0.6);
    // ratio^1.35 with ratio 2.
    EXPECT_NEAR(at32, 0.6 / std::pow(2.0, 1.35), 1e-12);
}

TEST(CacheModel, HitRateMonotoneNonIncreasingInCuCount)
{
    const CacheModel cache(hd7970());
    const KernelPhase p = phaseWithFootprint(40.0 * 1024, 0.7);
    double prev = 1.0;
    for (int cu = 4; cu <= 32; cu += 4) {
        const double hit = cache.hitRate(p, cu);
        EXPECT_LE(hit, prev + 1e-12);
        EXPECT_GE(hit, 0.0);
        prev = hit;
    }
}

TEST(CacheModel, ZeroFootprintKeepsBaseHit)
{
    const CacheModel cache(hd7970());
    const KernelPhase p = phaseWithFootprint(0.0, 0.42);
    EXPECT_DOUBLE_EQ(cache.hitRate(p, 32), 0.42);
}

TEST(CacheModel, L2BandwidthScalesWithComputeClock)
{
    const CacheModel cache(hd7970());
    EXPECT_NEAR(cache.l2Bandwidth(1000.0),
                cache.params().l2BytesPerCycle * 1e9, 1.0);
    EXPECT_NEAR(cache.l2Bandwidth(500.0),
                cache.l2Bandwidth(1000.0) / 2.0, 1.0);
}

TEST(CacheModel, Validation)
{
    CacheModelParams params;
    params.thrashExponent = 0.0;
    EXPECT_THROW(CacheModel(hd7970(), params), ConfigError);
    params = CacheModelParams{};
    params.l2BytesPerCycle = -1.0;
    EXPECT_THROW(CacheModel(hd7970(), params), ConfigError);

    const CacheModel cache(hd7970());
    EXPECT_THROW(cache.hitRate(KernelPhase{}, 0), ConfigError);
    EXPECT_THROW(cache.l2Bandwidth(0.0), ConfigError);
}
