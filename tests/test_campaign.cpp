/**
 * @file
 * Tests for the evaluation-campaign driver on a reduced suite.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/campaign.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

Campaign &
smallCampaign()
{
    static Campaign campaign = [] {
        CampaignOptions options;
        options.includeOracle = true;
        options.includeFreqOnly = true;
        Campaign c(device(),
                   {makeComd(), makeSort(), makeStencil(),
                    makeMaxFlops()},
                   options);
        c.run();
        return c;
    }();
    return campaign;
}

} // namespace

TEST(Campaign, SchemesIncludeRequestedOnes)
{
    const auto schemes = smallCampaign().schemes();
    EXPECT_EQ(schemes.size(), 5u);
    EXPECT_EQ(schemes.front(), Scheme::Baseline);
}

TEST(Campaign, BaselineNormalizedIsOne)
{
    for (const auto &app : smallCampaign().appNames()) {
        for (CampaignMetric m :
             {CampaignMetric::Ed2, CampaignMetric::Energy,
              CampaignMetric::Power, CampaignMetric::Time}) {
            EXPECT_NEAR(
                smallCampaign().normalized(Scheme::Baseline, app, m),
                1.0, 1e-12);
        }
    }
}

TEST(Campaign, AppNamesPreserveSuiteOrder)
{
    const auto names = smallCampaign().appNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "CoMD");
    EXPECT_EQ(names[3], "MaxFlops");
}

TEST(Campaign, OracleIsBestOnEd2)
{
    // The per-iteration exhaustive oracle must beat (or match) every
    // online scheme on every application.
    for (const auto &app : smallCampaign().appNames()) {
        const double oracle = smallCampaign().normalized(
            Scheme::Oracle, app, CampaignMetric::Ed2);
        for (Scheme s : {Scheme::Baseline, Scheme::CgOnly,
                         Scheme::Harmonia, Scheme::FreqOnly}) {
            EXPECT_LE(oracle,
                      smallCampaign().normalized(
                          s, app, CampaignMetric::Ed2) *
                          1.02)
                << app << " vs " << schemeName(s);
        }
    }
}

TEST(Campaign, HarmoniaImprovesGeomeanEd2)
{
    const double hm = smallCampaign().geomeanNormalized(
        Scheme::Harmonia, CampaignMetric::Ed2);
    EXPECT_LT(hm, 1.0);
}

TEST(Campaign, GeomeanExcludingStressDropsMaxFlops)
{
    const double all = smallCampaign().geomeanNormalized(
        Scheme::Harmonia, CampaignMetric::Ed2, false);
    const double noStress = smallCampaign().geomeanNormalized(
        Scheme::Harmonia, CampaignMetric::Ed2, true);
    EXPECT_NE(all, noStress);
}

TEST(Campaign, TrainingAndPredictorAccessible)
{
    EXPECT_GT(smallCampaign().training().samples.size(), 50u);
    EXPECT_GT(smallCampaign().training().bandwidthFit.correlation, 0.7);
    // Predictor callable.
    CounterSet c;
    c.memUnitBusy = 90.0;
    c.icActivity = 0.9;
    EXPECT_GE(smallCampaign().predictor().predictBandwidth(c), 0.0);
}

TEST(Campaign, ErrorsBeforeRunAndOnUnknownApp)
{
    Campaign fresh(device(), {makeMaxFlops()});
    EXPECT_THROW(fresh.result(Scheme::Baseline, "MaxFlops"),
                 ConfigError);
    EXPECT_THROW(
        smallCampaign().result(Scheme::Baseline, "NotThere"),
        ConfigError);
    EXPECT_THROW(Campaign(device(), {}), ConfigError);
}

TEST(SchemeName, AllNamed)
{
    EXPECT_STREQ(schemeName(Scheme::Baseline), "Baseline");
    EXPECT_STREQ(schemeName(Scheme::CgOnly), "CG");
    EXPECT_STREQ(schemeName(Scheme::Harmonia), "FG+CG");
    EXPECT_STREQ(schemeName(Scheme::Oracle), "Oracle");
    EXPECT_STREQ(schemeName(Scheme::FreqOnly), "FreqOnly");
}
