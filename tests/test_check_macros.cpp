/**
 * @file
 * Tests for the HARMONIA_CHECK(...) hot-path assertion macros.
 *
 * Defines HARMONIA_FORCE_CHECKS before the first include so the
 * macros are active regardless of the build type (they compile to
 * ((void)0) in NDEBUG builds otherwise).
 */

#define HARMONIA_FORCE_CHECKS
#include "common/check.hh"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"

using namespace harmonia;

namespace
{

static_assert(HARMONIA_CHECKS_ENABLED,
              "HARMONIA_FORCE_CHECKS must enable the macros");

/** Run @p fn, which must throw InternalError, and return the message. */
template <typename Fn>
std::string
messageOf(Fn &&fn)
{
    try {
        fn();
    } catch (const InternalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected InternalError";
    return {};
}

TEST(CheckMacros, PassingChecksAreSilent)
{
    EXPECT_NO_THROW(HARMONIA_CHECK(1 + 1 == 2, "arithmetic"));
    EXPECT_NO_THROW(HARMONIA_CHECK_FINITE(3.5));
    EXPECT_NO_THROW(HARMONIA_CHECK_NONNEG(0.0));
    EXPECT_NO_THROW(HARMONIA_CHECK_RANGE(0.0, 0.0, 1.0)); // lo edge.
    EXPECT_NO_THROW(HARMONIA_CHECK_RANGE(1.0, 0.0, 1.0)); // hi edge.
}

TEST(CheckMacros, FailedCheckThrowsInternalError)
{
    EXPECT_THROW(HARMONIA_CHECK(2 < 1, "impossible ordering"),
                 InternalError);
}

TEST(CheckMacros, MessageNamesConditionSiteAndContext)
{
    const std::string msg = messageOf(
        [] { HARMONIA_CHECK(2 < 1, "impossible ordering"); });
    EXPECT_NE(msg.find("HARMONIA_CHECK failed"), std::string::npos);
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("impossible ordering"), std::string::npos);
    EXPECT_NE(msg.find("test_check_macros.cpp"), std::string::npos);
}

TEST(CheckMacros, FiniteRejectsNanAndInf)
{
    EXPECT_THROW(
        HARMONIA_CHECK_FINITE(std::numeric_limits<double>::quiet_NaN()),
        InternalError);
    EXPECT_THROW(
        HARMONIA_CHECK_FINITE(std::numeric_limits<double>::infinity()),
        InternalError);
    EXPECT_THROW(
        HARMONIA_CHECK_FINITE(-std::numeric_limits<double>::infinity()),
        InternalError);
}

TEST(CheckMacros, NonNegRejectsNegativesAndNan)
{
    EXPECT_THROW(HARMONIA_CHECK_NONNEG(-1.0e-12), InternalError);
    EXPECT_THROW(
        HARMONIA_CHECK_NONNEG(std::numeric_limits<double>::quiet_NaN()),
        InternalError);
    EXPECT_NO_THROW(HARMONIA_CHECK_NONNEG(1.0e-12));
}

TEST(CheckMacros, RangeIsInclusiveAndRejectsNan)
{
    EXPECT_THROW(HARMONIA_CHECK_RANGE(1.001, 0.0, 1.0), InternalError);
    EXPECT_THROW(HARMONIA_CHECK_RANGE(-0.001, 0.0, 1.0), InternalError);
    EXPECT_THROW(
        HARMONIA_CHECK_RANGE(std::numeric_limits<double>::quiet_NaN(),
                             0.0, 1.0),
        InternalError);
    const std::string msg =
        messageOf([] { HARMONIA_CHECK_RANGE(2.5, 0.0, 1.0); });
    EXPECT_NE(msg.find("outside [0, 1]"), std::string::npos);
}

TEST(CheckMacros, ValueExpressionEvaluatedOnce)
{
    int evaluations = 0;
    auto next = [&evaluations] { return double(++evaluations); };
    HARMONIA_CHECK_NONNEG(next());
    EXPECT_EQ(evaluations, 1);
}

} // namespace
