/**
 * @file
 * Unit tests for the clock-domain descriptors and the L2->MC
 * crossing model.
 */

#include <gtest/gtest.h>

#include "harmonia/arch/clock_domain.hh"
#include "harmonia/common/error.hh"

using namespace harmonia;

TEST(ClockDomain, PeriodIsInverseFrequency)
{
    const ClockDomain domain{"compute", 1000.0};
    EXPECT_NEAR(domain.period(), 1e-9, 1e-15);
}

TEST(DomainCrossing, BandwidthScalesWithComputeClock)
{
    const DomainCrossing crossing(320.0);
    EXPECT_NEAR(crossing.maxBandwidth(1000.0), 320e9, 1.0);
    EXPECT_NEAR(crossing.maxBandwidth(300.0), 96e9, 1.0);
    EXPECT_DOUBLE_EQ(crossing.bytesPerComputeCycle(), 320.0);
}

TEST(DomainCrossing, BindsBelowPeakMemoryBandwidthAtLowClocks)
{
    // The Figure 9 premise: at 300 MHz the crossing (96 GB/s) is well
    // below the 264 GB/s bus peak; at 1 GHz it is comfortably above.
    const DomainCrossing crossing(320.0);
    EXPECT_LT(crossing.maxBandwidth(300.0), 264e9);
    EXPECT_GT(crossing.maxBandwidth(1000.0), 264e9);
}

TEST(DomainCrossing, RejectsBadArguments)
{
    EXPECT_THROW(DomainCrossing(0.0), ConfigError);
    EXPECT_THROW(DomainCrossing(-1.0), ConfigError);
    const DomainCrossing crossing(64.0);
    EXPECT_THROW(crossing.maxBandwidth(0.0), ConfigError);
    EXPECT_THROW(crossing.maxBandwidth(-5.0), ConfigError);
}
