/**
 * @file
 * Unit and property tests for the hardware-configuration lattice.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/sweep.hh"
#include "harmonia/dvfs/tunables.hh"

using namespace harmonia;

namespace
{

ConfigSpace
space()
{
    return ConfigSpace(hd7970());
}

} // namespace

TEST(ConfigSpace, SizeIsApproximately450)
{
    // Section 3.1: 8 CU counts x 8 compute freqs x 7 memory freqs.
    EXPECT_EQ(space().size(), 448u);
    EXPECT_EQ(space().allConfigs().size(), 448u);
}

TEST(ConfigSpace, IndexOfRoundTripsOverAll448Configs)
{
    // The canonical enumeration order is load-bearing: oracle,
    // sensitivity, and the sweep engine all address results by it.
    const ConfigSpace s = space();
    const auto all = s.allConfigs();
    ASSERT_EQ(all.size(), 448u);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(s.indexOf(all[i]), i) << all[i].str();
    EXPECT_THROW(s.indexOf({33, 1000, 1375}), ConfigError);
}

TEST(ConfigSpace, SweepEnumerationMatchesCanonicalOrder)
{
    // The sweep layer is the single owner of design-space enumeration;
    // it must expose exactly the 448 lattice points in space order.
    const GpuDevice device;
    const ConfigSweep sweep(device, {});
    const auto canonical = device.space().allConfigs();
    ASSERT_EQ(sweep.configs().size(), 448u);
    ASSERT_EQ(sweep.configs().size(), canonical.size());
    for (size_t i = 0; i < canonical.size(); ++i) {
        EXPECT_EQ(sweep.configs()[i], canonical[i]);
        EXPECT_EQ(sweep.indexOf(canonical[i]), i);
    }
}

TEST(ConfigSpace, MinAndMaxConfigs)
{
    const HardwareConfig lo = space().minConfig();
    EXPECT_EQ(lo.cuCount, 4);
    EXPECT_EQ(lo.computeFreqMhz, 300);
    EXPECT_EQ(lo.memFreqMhz, 475);
    const HardwareConfig hi = space().maxConfig();
    EXPECT_EQ(hi.cuCount, 32);
    EXPECT_EQ(hi.computeFreqMhz, 1000);
    EXPECT_EQ(hi.memFreqMhz, 1375);
}

TEST(ConfigSpace, AllEnumeratedConfigsValidate)
{
    const ConfigSpace s = space();
    for (const auto &cfg : s.allConfigs()) {
        EXPECT_TRUE(s.valid(cfg));
        EXPECT_NO_THROW(s.validate(cfg));
    }
}

TEST(ConfigSpace, ValidRejectsOffLattice)
{
    const ConfigSpace s = space();
    EXPECT_FALSE(s.valid({33, 1000, 1375}));
    EXPECT_FALSE(s.valid({32, 950, 1375}));
    EXPECT_FALSE(s.valid({32, 1000, 500}));
    EXPECT_FALSE(s.valid({0, 1000, 1375}));
    EXPECT_THROW(s.validate({32, 1000, 1376}), ConfigError);
}

TEST(ConfigSpace, StepSizesMatchPaper)
{
    const ConfigSpace s = space();
    // Section 5.2: CU step 4, core step 100 MHz, memory step 150 MHz.
    EXPECT_EQ(s.step(Tunable::CuCount), 4);
    EXPECT_EQ(s.step(Tunable::ComputeFreq), 100);
    EXPECT_EQ(s.step(Tunable::MemFreq), 150);
}

TEST(ConfigSpace, SteppedMovesAndClamps)
{
    const ConfigSpace s = space();
    const HardwareConfig cfg{16, 700, 925};
    EXPECT_EQ(s.stepped(cfg, Tunable::CuCount, -1).cuCount, 12);
    EXPECT_EQ(s.stepped(cfg, Tunable::ComputeFreq, +2).computeFreqMhz,
              900);
    EXPECT_EQ(s.stepped(cfg, Tunable::MemFreq, -10).memFreqMhz, 475);
    EXPECT_EQ(s.stepped(cfg, Tunable::CuCount, +10).cuCount, 32);
}

TEST(ConfigSpace, ClampedSnapsToLattice)
{
    const ConfigSpace s = space();
    const HardwareConfig snapped =
        s.clamped({33, 940, 480});
    EXPECT_TRUE(s.valid(snapped));
    EXPECT_EQ(snapped.cuCount, 32);
    EXPECT_EQ(snapped.computeFreqMhz, 900);
    EXPECT_EQ(snapped.memFreqMhz, 475);
}

TEST(ConfigSpace, ValuesEnumeratesAscending)
{
    const ConfigSpace s = space();
    const auto cus = s.values(Tunable::CuCount);
    ASSERT_EQ(cus.size(), 8u);
    EXPECT_EQ(cus.front(), 4);
    EXPECT_EQ(cus.back(), 32);
    const auto mems = s.values(Tunable::MemFreq);
    ASSERT_EQ(mems.size(), 7u);
    EXPECT_EQ(mems[1] - mems[0], 150);
}

TEST(ConfigSpace, OpsPerByteNormalizedToMinIsOne)
{
    const ConfigSpace s = space();
    EXPECT_NEAR(s.normalizedOpsPerByte(s.minConfig()), 1.0, 1e-12);
}

TEST(ConfigSpace, MaxOpsPerByteMatchesPaperScale)
{
    // Max compute at min memory bandwidth: (32*1000)/(4*300) * the
    // memory ratio 264/91.2 gives ~26.7x relative ops/byte when the
    // memory configuration stays at minimum.
    const ConfigSpace s = space();
    const HardwareConfig cfg{32, 1000, 475};
    EXPECT_NEAR(s.normalizedOpsPerByte(cfg), 26.67, 0.05);
}

TEST(HardwareConfig, GetSetRoundTrip)
{
    HardwareConfig cfg{8, 400, 625};
    for (Tunable t : kAllTunables) {
        const int v = cfg.get(t);
        cfg.set(t, v + 0);
        EXPECT_EQ(cfg.get(t), v);
    }
    cfg.set(Tunable::MemFreq, 775);
    EXPECT_EQ(cfg.memFreqMhz, 775);
}

TEST(HardwareConfig, StringForm)
{
    const HardwareConfig cfg{16, 700, 925};
    EXPECT_EQ(cfg.str(), "16CU@700MHz/mem925MHz");
}

TEST(TunableName, AllNamed)
{
    EXPECT_STREQ(tunableName(Tunable::CuCount), "CU-count");
    EXPECT_STREQ(tunableName(Tunable::ComputeFreq), "compute-freq");
    EXPECT_STREQ(tunableName(Tunable::MemFreq), "mem-freq");
}

/** Property: ops/byte is monotone in compute and anti-monotone in
 * memory frequency. */
class OpsPerByteSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OpsPerByteSweep, Monotonicity)
{
    const ConfigSpace s = space();
    const auto [cu, freq] = GetParam();
    const HardwareConfig a{cu, freq, 925};
    const double base = s.hardwareOpsPerByte(a);
    if (cu < 32) {
        EXPECT_GT(
            s.hardwareOpsPerByte({cu + 4, freq, 925}), base);
    }
    if (freq < 1000) {
        EXPECT_GT(
            s.hardwareOpsPerByte({cu, freq + 100, 925}), base);
    }
    EXPECT_GT(s.hardwareOpsPerByte({cu, freq, 775}), base);
}

INSTANTIATE_TEST_SUITE_P(
    ComputePoints, OpsPerByteSweep,
    ::testing::Combine(::testing::Values(4, 16, 28),
                       ::testing::Values(300, 600, 900)));
