/**
 * @file
 * Cross-device invariant sweep: every profile in the DeviceRegistry
 * must satisfy the full invariant catalog, not just the hd7970 part
 * the catalog was written against. This is the lattice-genericity
 * gate for new profiles — a registration that violates a model
 * invariant fails here before it ships.
 *
 * Tier2: the ampere-ga100 lattice has 10,416 points, so the
 * full-lattice SIMD sweep rides with the other long harnesses.
 */

#include <vector>

#include <gtest/gtest.h>

#include "harmonia/check/checker.hh"
#include "harmonia/sim/device_registry.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

/** A compute-bound and a memory-bound probe: the two corners that
 * stress opposite halves of the timing/power models. */
std::vector<Application>
probeApps()
{
    return {makeMaxFlops(), makeDeviceMemory()};
}

TEST(CrossDevice, EveryRegisteredDeviceSatisfiesTheCatalog)
{
    for (const std::string &name : deviceNames()) {
        const GpuDevice device = makeDevice(name).value();
        CheckOptions opt;
        opt.jobs = 2;
        opt.maxIterationsPerKernel = 1;
        const ModelChecker checker(device, opt);
        const CheckReport report = checker.checkSuite(probeApps());
        EXPECT_GT(report.points, 0u) << name;
        EXPECT_TRUE(report.clean())
            << name << ": " << report.violations.size()
            << " violation(s), first: "
            << (report.violations.empty()
                    ? std::string()
                    : report.violations.front().str());
    }
}

TEST(CrossDevice, AmpereFullLatticeSimdSweepIsClean)
{
    // The 10k+-config scale test from the acceptance checklist: the
    // whole ampere-ga100 lattice through the SIMD path, 0 violations.
    const GpuDevice device = makeDevice("ampere-ga100").value();
    ASSERT_GE(device.space().size(), 10000u);
    CheckOptions opt;
    opt.jobs = 4;
    opt.simd = true;
    const ModelChecker checker(device, opt);
    const Application app = makeMaxFlops();
    const CheckReport report =
        checker.checkInvocation(app.kernels.front(), 0);
    EXPECT_EQ(report.points, device.space().size());
    EXPECT_TRUE(report.clean())
        << report.violations.size() << " violation(s)";
}

TEST(CrossDevice, ScalarAndSimdAgreeOffTheDefaultLattice)
{
    // The scalar/SIMD bitwise contract is lattice-generic too: on the
    // stacked part, both paths must produce identical sweep results.
    const GpuDevice device = makeDevice("hbm-stacked").value();
    const KernelProfile k = makeDeviceMemory().kernels.front();

    const ConfigSweep simd(device, SweepOptions{1, 0, true, true});
    const ConfigSweep scalar(device, SweepOptions{1, 0, true, false});
    const std::vector<KernelResult> &a = simd.evaluate(k, 0);
    const std::vector<KernelResult> &b = scalar.evaluate(k, 0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].time(), b[i].time()) << "point " << i;
        ASSERT_EQ(a[i].ed2(), b[i].ed2()) << "point " << i;
    }
}

} // namespace
