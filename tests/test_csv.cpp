/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.hh"
#include "harmonia/common/error.hh"

using namespace harmonia;

TEST(Csv, WritesHeaderImmediately)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    {
        CsvWriter csv(os, {"name", "x"});
        csv.row().field("foo").field(1.5);
        csv.row().field("bar").field(static_cast<long long>(7));
    }
    EXPECT_EQ(os.str(), "name,x\nfoo,1.5\nbar,7\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    std::ostringstream os;
    {
        CsvWriter csv(os, {"a"});
        csv.row().field(std::string("x,y"));
        csv.row().field(std::string("he said \"hi\""));
    }
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RejectsEmptyHeader)
{
    std::ostringstream os;
    EXPECT_THROW(CsvWriter(os, {}), ConfigError);
}

TEST(Csv, FieldBeforeRowPanics)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a"});
    EXPECT_THROW(csv.field(std::string("x")), InternalError);
}

TEST(Csv, TooManyFieldsPanics)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a"});
    csv.row().field(std::string("1"));
    EXPECT_THROW(csv.field(std::string("2")), InternalError);
}

TEST(Csv, IncompleteRowDetectedOnFinish)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    csv.row().field(std::string("only"));
    EXPECT_THROW(csv.finish(), InternalError);
}

TEST(Csv, DestructorFlushesCompleteRow)
{
    std::ostringstream os;
    {
        CsvWriter csv(os, {"a"});
        csv.row().field(std::string("v"));
    }
    EXPECT_EQ(os.str(), "a\nv\n");
}
