/**
 * @file
 * Tests for the DeviceRegistry (sim/device_registry.hh): built-in
 * profiles, case-insensitive lookup, structured unknown-name errors,
 * third-party registration, and the bitwise equivalence between the
 * registry's default profile and the pre-registry hardwired device.
 */

#include "harmonia/sim/device_registry.hh"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

TEST(DeviceRegistry, BuiltinsAreRegisteredAndSorted)
{
    DeviceRegistry &reg = DeviceRegistry::instance();
    EXPECT_TRUE(reg.contains("hd7970"));
    EXPECT_TRUE(reg.contains("hbm-stacked"));
    EXPECT_TRUE(reg.contains("ampere-ga100"));
    EXPECT_FALSE(reg.contains("gtx480"));

    const std::vector<std::string> names = reg.names();
    EXPECT_GE(names.size(), 3u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names, deviceNames());
    for (const char *builtin : {"hd7970", "hbm-stacked", "ampere-ga100"})
        EXPECT_NE(std::find(names.begin(), names.end(), builtin),
                  names.end());
}

TEST(DeviceRegistry, LookupIsCaseInsensitiveWithCanonicalNames)
{
    DeviceRegistry &reg = DeviceRegistry::instance();
    EXPECT_TRUE(reg.contains("HD7970"));
    EXPECT_TRUE(reg.contains("Ampere-GA100"));

    const Result<DeviceProfile> p = reg.profile("HBM-Stacked");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().name, "hbm-stacked");

    const Result<GpuDevice> d = reg.make("HD7970");
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value().name(), "hd7970");
}

TEST(DeviceRegistry, UnknownNameIsStructuredAndListsTheCatalog)
{
    const Result<DeviceProfile> p =
        DeviceRegistry::instance().profile("gtx480");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::UnknownDevice);
    // The message names the offender and the available parts.
    EXPECT_NE(p.status().message().find("gtx480"), std::string::npos);
    EXPECT_NE(p.status().message().find("hd7970"), std::string::npos);

    const Result<GpuDevice> d = makeDevice("gtx480");
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), StatusCode::UnknownDevice);
    // value() on the error surfaces as the user-error exception.
    EXPECT_THROW(makeDevice("gtx480").value(), ConfigError);
}

TEST(DeviceRegistry, LatticeSizesMatchTheCatalog)
{
    DeviceRegistry &reg = DeviceRegistry::instance();
    EXPECT_EQ(reg.profile("hd7970").value().latticeSize(), 448u);
    EXPECT_EQ(reg.profile("hbm-stacked").value().latticeSize(), 512u);
    const size_t ampere =
        reg.profile("ampere-ga100").value().latticeSize();
    EXPECT_EQ(ampere, 10416u);
    EXPECT_GE(ampere, 10000u); // the scale-test floor
    // latticeSize() agrees with the composed device's config space.
    EXPECT_EQ(ampere, reg.make("ampere-ga100").value().space().size());
}

TEST(DeviceRegistry, DefaultProfileMatchesHardwiredDeviceBitwise)
{
    // The pre-registry default constructor and the registry's default
    // profile must be the same part: identical lattice, identical
    // model outputs, bit for bit.
    const GpuDevice hardwired;
    const GpuDevice registered = makeDevice(kDefaultDeviceName).value();
    EXPECT_EQ(hardwired.name(), "hd7970");
    EXPECT_EQ(hardwired.space().size(), registered.space().size());

    const KernelProfile compute = makeMaxFlops().kernels.front();
    const KernelProfile memory = makeDeviceMemory().kernels.front();
    for (const KernelProfile &k : {compute, memory}) {
        for (const HardwareConfig &cfg :
             {hardwired.space().minConfig(),
              hardwired.space().maxConfig()}) {
            const KernelResult a = hardwired.run(k, 0, cfg);
            const KernelResult b = registered.run(k, 0, cfg);
            EXPECT_EQ(a.time(), b.time());
            EXPECT_EQ(a.ed2(), b.ed2());
        }
    }
}

TEST(DeviceRegistry, ThirdPartyProfilesRegisterAndBuild)
{
    DeviceRegistry &reg = DeviceRegistry::instance();

    // Derive a variant from a built-in, exactly the documented flow.
    DeviceProfile variant = reg.profile("hd7970").value();
    variant.name = "hd7970-vscale-test";
    variant.description = "test variant with interface DVS";
    variant.memPower.voltageScaling = true;
    ASSERT_TRUE(reg.add(variant).ok());
    EXPECT_TRUE(reg.contains("HD7970-VSCALE-TEST"));
    const GpuDevice device = makeDevice("hd7970-vscale-test").value();
    EXPECT_EQ(device.name(), "hd7970-vscale-test");
    EXPECT_EQ(device.space().size(), 448u);

    // Duplicate and empty names are rejected as user errors.
    EXPECT_EQ(reg.add(variant).code(), StatusCode::InvalidArgument);
    DeviceProfile anonymous = reg.profile("hd7970").value();
    anonymous.name = "";
    EXPECT_EQ(reg.add(anonymous).code(), StatusCode::InvalidArgument);

    // A profile that cannot compose into a valid device is rejected
    // at registration time, not at first use.
    DeviceProfile broken = reg.profile("hd7970").value();
    broken.name = "broken-test";
    broken.computeDpm.clear();
    EXPECT_EQ(reg.add(broken).code(), StatusCode::InvalidArgument);
    EXPECT_FALSE(reg.contains("broken-test"));
}

} // namespace
