/**
 * @file
 * Unit tests for the DVFS operating-point table (paper Table 1).
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/dvfs/dpm_table.hh"

using namespace harmonia;

TEST(DpmTable, PaperTable1Values)
{
    const DpmTable dpm = hd7970ComputeDpm();
    EXPECT_EQ(dpm.state("DPM0").freqMhz, 300);
    EXPECT_DOUBLE_EQ(dpm.state("DPM0").voltage, 0.85);
    EXPECT_EQ(dpm.state("DPM1").freqMhz, 500);
    EXPECT_DOUBLE_EQ(dpm.state("DPM1").voltage, 0.95);
    EXPECT_EQ(dpm.state("DPM2").freqMhz, 925);
    EXPECT_DOUBLE_EQ(dpm.state("DPM2").voltage, 1.17);
    // The 1 GHz / 1.19 V boost state (Section 2.3).
    EXPECT_EQ(dpm.state("Boost").freqMhz, 1000);
    EXPECT_DOUBLE_EQ(dpm.state("Boost").voltage, 1.19);
}

TEST(DpmTable, RangeEndpoints)
{
    const DpmTable dpm = hd7970ComputeDpm();
    EXPECT_EQ(dpm.minFreqMhz(), 300);
    EXPECT_EQ(dpm.maxFreqMhz(), 1000);
}

TEST(DpmTable, VoltageAtFusedPointsIsExact)
{
    const DpmTable dpm = hd7970ComputeDpm();
    EXPECT_DOUBLE_EQ(dpm.voltageFor(300.0), 0.85);
    EXPECT_DOUBLE_EQ(dpm.voltageFor(500.0), 0.95);
    EXPECT_DOUBLE_EQ(dpm.voltageFor(925.0), 1.17);
    EXPECT_DOUBLE_EQ(dpm.voltageFor(1000.0), 1.19);
}

TEST(DpmTable, InterpolationIsLinearBetweenPoints)
{
    const DpmTable dpm = hd7970ComputeDpm();
    EXPECT_NEAR(dpm.voltageFor(400.0), 0.90, 1e-12);
    // 700 MHz sits (700-500)/(925-500) between DPM1 and DPM2.
    EXPECT_NEAR(dpm.voltageFor(700.0),
                0.95 + 200.0 / 425.0 * 0.22, 1e-12);
}

TEST(DpmTable, VoltageMonotoneInFrequency)
{
    const DpmTable dpm = hd7970ComputeDpm();
    double prev = 0.0;
    for (int f = 300; f <= 1000; f += 100) {
        const double v = dpm.voltageFor(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(DpmTable, OutOfRangeFrequencyThrows)
{
    const DpmTable dpm = hd7970ComputeDpm();
    EXPECT_THROW(dpm.voltageFor(200.0), ConfigError);
    EXPECT_THROW(dpm.voltageFor(1100.0), ConfigError);
}

TEST(DpmTable, UnknownStateNameThrows)
{
    EXPECT_THROW(hd7970ComputeDpm().state("DPM9"), ConfigError);
}

TEST(DpmTable, ConstructionValidation)
{
    EXPECT_THROW(DpmTable({{"only", 100, 1.0}}), ConfigError);
    EXPECT_THROW(
        DpmTable({{"a", 200, 1.0}, {"b", 100, 1.1}}), ConfigError);
    EXPECT_THROW(
        DpmTable({{"a", 100, 1.1}, {"b", 200, 1.0}}), ConfigError);
    EXPECT_THROW(
        DpmTable({{"a", 100, 0.0}, {"b", 200, 1.0}}), ConfigError);
}
