/**
 * @file
 * Unit tests for the error-reporting primitives.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"

using namespace harmonia;

TEST(Error, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("bad input"), ConfigError);
}

TEST(Error, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("bug"), InternalError);
}

TEST(Error, BothDeriveFromSimError)
{
    EXPECT_THROW(fatal("x"), SimError);
    EXPECT_THROW(panic("x"), SimError);
}

TEST(Error, MessageConcatenatesFragments)
{
    try {
        fatal("value ", 42, " exceeds limit ", 3.5);
        FAIL() << "fatal did not throw";
    } catch (const ConfigError &e) {
        EXPECT_STREQ(e.what(), "value 42 exceeds limit 3.5");
    }
}

TEST(Error, FatalIfOnlyThrowsWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(fatalIf(true, "yes"), ConfigError);
}

TEST(Error, PanicIfOnlyThrowsWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), InternalError);
}

TEST(Error, ConfigErrorIsNotInternalError)
{
    try {
        fatal("user error");
    } catch (const InternalError &) {
        FAIL() << "ConfigError caught as InternalError";
    } catch (const ConfigError &) {
        SUCCEED();
    }
}
