/**
 * @file
 * Bitwise-equivalence harness for the factored lattice evaluator.
 *
 * The factored path (TimingEngine::prepare + buildAxisTables +
 * evaluate, LatticeEvaluator, GpuDevice::runLattice) promises results
 * *bitwise identical* to the naive per-config path — not merely close.
 * These tests compare every double of every KernelResult at the bit
 * level across the full workload suite x the 448-point lattice, plus
 * spot-check each axis table against direct model calls (which also
 * pins the bandwidth-dedupe rule: a reused entry must equal the full
 * fixed-point solve it skipped).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "harmonia/common/error.hh"
#include "harmonia/common/thread_pool.hh"
#include "harmonia/core/sweep.hh"
#include "harmonia/sim/gpu_device.hh"
#include "sim/lattice_evaluator.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

/** Bit pattern of a double: distinguishes -0.0/0.0 and NaN payloads. */
uint64_t
bits(double x)
{
    return std::bit_cast<uint64_t>(x);
}

#define EXPECT_SAME_BITS(a, b)                                          \
    EXPECT_EQ(bits(a), bits(b)) << #a " differs from " #b " at " << ctx

void
expectSameCounters(const CounterSet &a, const CounterSet &b,
                   const std::string &ctx)
{
    EXPECT_SAME_BITS(a.valuBusy, b.valuBusy);
    EXPECT_SAME_BITS(a.valuUtilization, b.valuUtilization);
    EXPECT_SAME_BITS(a.memUnitBusy, b.memUnitBusy);
    EXPECT_SAME_BITS(a.memUnitStalled, b.memUnitStalled);
    EXPECT_SAME_BITS(a.writeUnitStalled, b.writeUnitStalled);
    EXPECT_SAME_BITS(a.l2CacheHit, b.l2CacheHit);
    EXPECT_SAME_BITS(a.icActivity, b.icActivity);
    EXPECT_SAME_BITS(a.normVgpr, b.normVgpr);
    EXPECT_SAME_BITS(a.normSgpr, b.normSgpr);
    EXPECT_SAME_BITS(a.valuInsts, b.valuInsts);
    EXPECT_SAME_BITS(a.vfetchInsts, b.vfetchInsts);
    EXPECT_SAME_BITS(a.vwriteInsts, b.vwriteInsts);
    EXPECT_SAME_BITS(a.offChipBytes, b.offChipBytes);
}

void
expectSameTiming(const KernelTiming &a, const KernelTiming &b,
                 const std::string &ctx)
{
    EXPECT_SAME_BITS(a.execTime, b.execTime);
    EXPECT_SAME_BITS(a.computeTime, b.computeTime);
    EXPECT_SAME_BITS(a.l2Time, b.l2Time);
    EXPECT_SAME_BITS(a.memTime, b.memTime);
    EXPECT_SAME_BITS(a.launchOverhead, b.launchOverhead);
    EXPECT_SAME_BITS(a.busyTime, b.busyTime);
    EXPECT_EQ(a.occupancy.wavesPerSimd, b.occupancy.wavesPerSimd) << ctx;
    EXPECT_EQ(a.occupancy.wavesPerCu, b.occupancy.wavesPerCu) << ctx;
    EXPECT_EQ(a.occupancy.workgroupsPerCu, b.occupancy.workgroupsPerCu)
        << ctx;
    EXPECT_SAME_BITS(a.occupancy.occupancy, b.occupancy.occupancy);
    EXPECT_EQ(a.occupancy.limiter, b.occupancy.limiter) << ctx;
    EXPECT_SAME_BITS(a.l2HitRate, b.l2HitRate);
    EXPECT_SAME_BITS(a.requestedBytes, b.requestedBytes);
    EXPECT_SAME_BITS(a.offChipBytes, b.offChipBytes);
    EXPECT_SAME_BITS(a.bandwidth.effectiveBps, b.bandwidth.effectiveBps);
    EXPECT_SAME_BITS(a.bandwidth.latency, b.bandwidth.latency);
    EXPECT_EQ(a.bandwidth.limiter, b.bandwidth.limiter) << ctx;
    expectSameCounters(a.counters, b.counters, ctx);
}

void
expectSameResult(const KernelResult &a, const KernelResult &b,
                 const std::string &ctx)
{
    expectSameTiming(a.timing, b.timing, ctx);
    EXPECT_SAME_BITS(a.power.gpu.cuDynamic, b.power.gpu.cuDynamic);
    EXPECT_SAME_BITS(a.power.gpu.uncoreDynamic,
                     b.power.gpu.uncoreDynamic);
    EXPECT_SAME_BITS(a.power.gpu.leakage, b.power.gpu.leakage);
    EXPECT_SAME_BITS(a.power.mem.background, b.power.mem.background);
    EXPECT_SAME_BITS(a.power.mem.activatePrecharge,
                     b.power.mem.activatePrecharge);
    EXPECT_SAME_BITS(a.power.mem.readWrite, b.power.mem.readWrite);
    EXPECT_SAME_BITS(a.power.mem.termination, b.power.mem.termination);
    EXPECT_SAME_BITS(a.power.mem.phy, b.power.mem.phy);
    EXPECT_SAME_BITS(a.power.other, b.power.other);
    EXPECT_SAME_BITS(a.cardEnergy, b.cardEnergy);
    EXPECT_SAME_BITS(a.gpuEnergy, b.gpuEnergy);
    EXPECT_SAME_BITS(a.memEnergy, b.memEnergy);
}

} // namespace

// The headline guarantee: every kernel of every suite application, at
// every iteration's phase, across all 448 lattice points, produces the
// same bits through GpuDevice::runLattice as through per-config run().
TEST(FactoredEngine, FullSuiteBitwiseIdenticalToNaive)
{
    const GpuDevice &dev = device();
    const std::vector<HardwareConfig> configs =
        dev.space().allConfigs();
    ASSERT_EQ(configs.size(), 448u);

    for (const Application &app : standardSuite()) {
        for (const KernelProfile &k : app.kernels) {
            for (int iter : {0, 1, app.iterations - 1}) {
                const KernelPhase phase = k.phase(iter);
                std::vector<KernelResult> factored(configs.size());
                dev.runLattice(k, phase, configs, factored.data());
                for (size_t i = 0; i < configs.size(); ++i) {
                    const KernelResult naive =
                        dev.run(k, phase, configs[i]);
                    expectSameResult(factored[i], naive,
                                     k.id() + "#" +
                                         std::to_string(iter) + " @ " +
                                         configs[i].str());
                }
            }
        }
    }
}

// Same guarantee through the sweep engine with a thread pool: the
// factored batch path must be scheduling-independent and bit-equal to
// a serial naive sweep.
TEST(FactoredEngine, SweepFactoredMatchesNaiveSweep)
{
    SweepOptions naiveOpts;
    naiveOpts.jobs = 1;
    naiveOpts.factored = false;
    const ConfigSweep naive(device(), naiveOpts);

    SweepOptions factoredOpts;
    factoredOpts.jobs = 4;
    factoredOpts.factored = true;
    const ConfigSweep factored(device(), factoredOpts);

    for (const Application &app : {makeDeviceMemory(), makeSort(),
                                   makeXsbench()}) {
        for (const KernelProfile &k : app.kernels) {
            const auto &a = naive.evaluate(k, 0);
            const auto &b = factored.evaluate(k, 0);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i)
                expectSameResult(a[i], b[i],
                                 k.id() + " @ " +
                                     naive.configs()[i].str());
        }
    }
}

// Every axis-table entry must be byte-for-byte the value the direct
// model call produces. The bandwidth check is the important one: it
// proves the crossing-cap dedupe only reuses results that are exactly
// what the skipped fixed-point solve would have returned.
TEST(FactoredEngine, AxisTablesMatchDirectModelCalls)
{
    const GpuDevice &dev = device();
    const TimingEngine &eng = dev.engine();
    const KernelProfile k = makeSpmv().kernels.front();
    const KernelPhase phase = k.phase(0);

    const PreparedKernel prep = eng.prepare(k, phase);
    const TimingAxisTables t = eng.buildAxisTables(prep);

    ASSERT_EQ(t.cuValues.size(), 8u);
    ASSERT_EQ(t.computeFreqValues.size(), 8u);
    ASSERT_EQ(t.memFreqValues.size(), 7u);
    ASSERT_EQ(t.bandwidthBps.size(), 448u);
    ASSERT_EQ(t.bandwidthLatency.size(), 448u);
    ASSERT_EQ(t.bandwidthLimiter.size(), 448u);

    for (size_t cu = 0; cu < t.cuValues.size(); ++cu) {
        const std::string ctx = "cu=" + std::to_string(t.cuValues[cu]);
        EXPECT_SAME_BITS(t.l2HitRate[cu],
                         eng.cacheModel().hitRate(phase, t.cuValues[cu]));
        EXPECT_SAME_BITS(t.offChipBytes[cu],
                         prep.requestedBytes * (1.0 - t.l2HitRate[cu]));
    }
    for (size_t cf = 0; cf < t.computeFreqValues.size(); ++cf) {
        const std::string ctx =
            "cf=" + std::to_string(t.computeFreqValues[cf]);
        EXPECT_SAME_BITS(
            t.l2Bandwidth[cf],
            eng.cacheModel().l2Bandwidth(t.computeFreqValues[cf]));
        EXPECT_SAME_BITS(t.crossingCap[cf],
                         eng.memorySystem().crossing().maxBandwidth(
                             t.computeFreqValues[cf]));
    }
    for (size_t m = 0; m < t.memFreqValues.size(); ++m) {
        const std::string ctx =
            "mem=" + std::to_string(t.memFreqValues[m]);
        EXPECT_SAME_BITS(
            t.peakBandwidth[m],
            eng.memorySystem().peakBandwidth(t.memFreqValues[m]));
    }

    MemDemand demand;
    demand.requestBytes = dev.config().cacheLineBytes;
    demand.rowHitFraction = phase.rowHitFraction;
    demand.streamEfficiency = phase.streamEfficiency;
    for (size_t m = 0; m < t.memFreqValues.size(); ++m) {
        for (size_t cu = 0; cu < t.cuValues.size(); ++cu) {
            demand.outstandingRequests = t.outstandingRequests[cu];
            for (size_t cf = 0; cf < t.computeFreqValues.size(); ++cf) {
                const std::string ctx =
                    "bw(" + std::to_string(t.memFreqValues[m]) + "," +
                    std::to_string(t.cuValues[cu]) + "," +
                    std::to_string(t.computeFreqValues[cf]) + ")";
                const BandwidthResult direct =
                    eng.memorySystem().resolveBandwidth(
                        t.memFreqValues[m], t.computeFreqValues[cf],
                        demand);
                const BandwidthResult tabled =
                    t.bandwidthAt((m * t.cuValues.size() + cu) *
                                      t.computeFreqValues.size() +
                                  cf);
                EXPECT_SAME_BITS(tabled.effectiveBps,
                                 direct.effectiveBps);
                EXPECT_SAME_BITS(tabled.latency, direct.latency);
                EXPECT_EQ(tabled.limiter, direct.limiter) << ctx;
            }
        }
    }
}

// Table construction with a pool must be bit-identical to serial
// construction (each bandwidth row writes only its own slots).
TEST(FactoredEngine, ParallelTableBuildMatchesSerial)
{
    const TimingEngine &eng = device().engine();
    const KernelProfile k = makeStreamcluster().kernels.front();
    const PreparedKernel prep = eng.prepare(k, k.phase(0));

    const TimingAxisTables serial = eng.buildAxisTables(prep);
    ThreadPool pool(4);
    const TimingAxisTables parallel = eng.buildAxisTables(prep, &pool);

    ASSERT_EQ(serial.bandwidthBps.size(), parallel.bandwidthBps.size());
    for (size_t i = 0; i < serial.bandwidthBps.size(); ++i) {
        const std::string ctx = "slot " + std::to_string(i);
        EXPECT_SAME_BITS(serial.bandwidthBps[i],
                         parallel.bandwidthBps[i]);
        EXPECT_SAME_BITS(serial.bandwidthLatency[i],
                         parallel.bandwidthLatency[i]);
        EXPECT_EQ(serial.bandwidthLimiter[i],
                  parallel.bandwidthLimiter[i])
            << ctx;
    }
}

// Off-lattice configurations are rejected by the table lookup just as
// the naive path rejects them in validate().
TEST(FactoredEngine, OffLatticeEvaluationThrows)
{
    const GpuDevice &dev = device();
    const KernelProfile k = makeMaxFlops().kernels.front();
    const LatticeEvaluator eval(dev, k, k.phase(0));

    HardwareConfig cfg = dev.space().maxConfig();
    EXPECT_NO_THROW(eval.evaluate(cfg));
    cfg.computeFreqMhz = 1001;
    EXPECT_THROW(eval.evaluate(cfg), ConfigError);
    cfg = dev.space().maxConfig();
    cfg.cuCount = 3;
    EXPECT_THROW(eval.evaluate(cfg), ConfigError);
    cfg = dev.space().maxConfig();
    cfg.memFreqMhz = 500;
    EXPECT_THROW(eval.evaluate(cfg), ConfigError);
}

// The sweep memo must treat the factored and naive paths as the same
// cache: repeated evaluations hit, and the pair key distinguishes
// iterations.
TEST(FactoredEngine, SweepCacheKeyDistinguishesIterations)
{
    const ConfigSweep sweep(device());
    const KernelProfile k = makeCfd().kernels.front();

    const auto &first = sweep.evaluate(k, 0);
    EXPECT_EQ(sweep.cacheMisses(), 1u);
    const auto &again = sweep.evaluate(k, 0);
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(sweep.cacheHits(), 1u);

    sweep.evaluate(k, 1);
    EXPECT_EQ(sweep.cacheMisses(), 2u);
    EXPECT_EQ(sweep.cacheEntries(), 2u);
}
