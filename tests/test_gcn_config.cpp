/**
 * @file
 * Unit tests for the GCN device description, anchored to the HD7970
 * numbers the paper quotes.
 */

#include <gtest/gtest.h>

#include "harmonia/arch/gcn_config.hh"
#include "harmonia/common/error.hh"

using namespace harmonia;

TEST(GcnConfig, Hd7970PeakFlopsIs4096GFLOPS)
{
    const GcnDeviceConfig dev = hd7970();
    // Section 2.2: 32 CUs x 4 SIMD x 16 PEs x 2 (FMA) x 1 GHz.
    EXPECT_NEAR(dev.peakFlops(32, 1000.0), 4096e9, 1e6);
}

TEST(GcnConfig, Hd7970PeakBandwidth)
{
    const GcnDeviceConfig dev = hd7970();
    // Section 3.1: 264 GB/s at 1375 MHz, 90 GB/s at 475 MHz.
    EXPECT_NEAR(dev.peakMemBandwidth(1375.0), 264e9, 1e9);
    EXPECT_NEAR(dev.peakMemBandwidth(475.0), 91.2e9, 0.5e9);
}

TEST(GcnConfig, BusWidthIs384Bits)
{
    const GcnDeviceConfig dev = hd7970();
    EXPECT_DOUBLE_EQ(dev.memBusBytes(), 48.0);
}

TEST(GcnConfig, MemoryStepIsAbout30GBs)
{
    const GcnDeviceConfig dev = hd7970();
    const double step = dev.peakMemBandwidth(625.0) -
                        dev.peakMemBandwidth(475.0);
    EXPECT_NEAR(step, 28.8e9, 0.1e9); // the paper rounds to 30 GB/s
}

TEST(GcnConfig, TotalLanesScalesWithCuCount)
{
    const GcnDeviceConfig dev = hd7970();
    EXPECT_EQ(dev.totalLanes(32), 2048);
    EXPECT_EQ(dev.totalLanes(4), 256);
}

TEST(GcnConfig, WaveInstRateIsOnePerCuPerCycle)
{
    const GcnDeviceConfig dev = hd7970();
    EXPECT_NEAR(dev.peakWaveInstRate(32, 1000.0), 32.0e9, 1.0);
    EXPECT_NEAR(dev.peakWaveInstRate(4, 300.0), 1.2e9, 1.0);
}

TEST(GcnConfig, DefaultValidates)
{
    EXPECT_NO_THROW(hd7970().validate());
}

TEST(GcnConfig, ValidationCatchesBadCuRange)
{
    GcnDeviceConfig dev = hd7970();
    dev.cuCountMin = 5; // not divisible by step from numCus
    EXPECT_THROW(dev.validate(), ConfigError);
}

TEST(GcnConfig, ValidationCatchesInconsistentWavefront)
{
    GcnDeviceConfig dev = hd7970();
    dev.wavefrontSize = 32;
    EXPECT_THROW(dev.validate(), ConfigError);
}

TEST(GcnConfig, ValidationCatchesBadFreqLattice)
{
    GcnDeviceConfig dev = hd7970();
    dev.computeFreqStepMhz = 130;
    EXPECT_THROW(dev.validate(), ConfigError);
    dev = hd7970();
    dev.memFreqMaxMhz = 1400;
    EXPECT_THROW(dev.validate(), ConfigError);
}
