/**
 * @file
 * Unit tests for the GDDR5 timing and power model.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/memsys/gddr5.hh"

using namespace harmonia;

TEST(Gddr5, UnloadedLatencyDecreasesWithFrequency)
{
    const Gddr5Model model;
    const double slow = model.unloadedLatency(475.0);
    const double fast = model.unloadedLatency(1375.0);
    EXPECT_GT(slow, fast);
    // Core latency is the floor.
    EXPECT_GT(fast, 100e-9);
    EXPECT_LT(slow, 500e-9);
}

TEST(Gddr5, LoadedLatencyGrowsWithUtilization)
{
    const Gddr5Model model;
    const double idle = model.loadedLatency(925.0, 0.0);
    const double mid = model.loadedLatency(925.0, 0.5);
    const double hot = model.loadedLatency(925.0, 0.95);
    EXPECT_DOUBLE_EQ(idle, model.unloadedLatency(925.0));
    EXPECT_GT(mid, idle);
    EXPECT_GT(hot, mid);
}

TEST(Gddr5, LoadedLatencyClampsNearSaturation)
{
    const Gddr5Model model;
    EXPECT_DOUBLE_EQ(model.loadedLatency(925.0, 1.0),
                     model.loadedLatency(925.0, 2.0));
}

TEST(Gddr5, BackgroundPowerScalesWithFrequency)
{
    const Gddr5Model model;
    const auto lo = model.power(475.0, 0.0, 1.0);
    const auto hi = model.power(1375.0, 0.0, 1.0);
    EXPECT_GT(hi.background, lo.background);
    EXPECT_GT(hi.phy, lo.phy);
    // Idle: no traffic-proportional components.
    EXPECT_DOUBLE_EQ(lo.activatePrecharge, 0.0);
    EXPECT_DOUBLE_EQ(lo.readWrite, 0.0);
    EXPECT_DOUBLE_EQ(lo.termination, 0.0);
}

TEST(Gddr5, TrafficComponentsScaleWithBytes)
{
    const Gddr5Model model;
    const auto one = model.power(1375.0, 100e9, 0.7);
    const auto two = model.power(1375.0, 200e9, 0.7);
    EXPECT_NEAR(two.readWrite, 2.0 * one.readWrite, 1e-9);
    EXPECT_NEAR(two.termination, 2.0 * one.termination, 1e-9);
    EXPECT_NEAR(two.activatePrecharge, 2.0 * one.activatePrecharge,
                1e-9);
}

TEST(Gddr5, LowerRowHitMeansMoreActivatePower)
{
    const Gddr5Model model;
    const auto streaming = model.power(1375.0, 100e9, 0.9);
    const auto random = model.power(1375.0, 100e9, 0.2);
    EXPECT_GT(random.activatePrecharge, streaming.activatePrecharge);
}

TEST(Gddr5, PerBytEnergyRisesAtLowFrequency)
{
    // Section 2.4: lowering bus frequency can increase read/write and
    // termination energy due to longer intervals between accesses.
    const Gddr5Model model;
    const auto lo = model.power(475.0, 50e9, 0.7);
    const auto hi = model.power(1375.0, 50e9, 0.7);
    EXPECT_GT(lo.readWrite, hi.readWrite);
    EXPECT_GT(lo.termination, hi.termination);
}

TEST(Gddr5, TotalSumsComponents)
{
    const Gddr5Model model;
    const MemPowerBreakdown p = model.power(925.0, 80e9, 0.5);
    EXPECT_NEAR(p.total(),
                p.background + p.activatePrecharge + p.readWrite +
                    p.termination + p.phy,
                1e-12);
    EXPECT_GT(p.total(), 0.0);
}

TEST(Gddr5, RejectsInvalidArguments)
{
    const Gddr5Model model;
    EXPECT_THROW(model.unloadedLatency(0.0), ConfigError);
    EXPECT_THROW(model.loadedLatency(925.0, -0.1), ConfigError);
    EXPECT_THROW(model.power(925.0, -1.0, 0.5), ConfigError);
    EXPECT_THROW(model.power(925.0, 1.0, 1.5), ConfigError);
    EXPECT_THROW(model.power(0.0, 1.0, 0.5), ConfigError);
}

TEST(Gddr5, ConstructionValidatesParams)
{
    Gddr5TimingParams timing;
    timing.queueSensitivity = 1.0;
    EXPECT_THROW(Gddr5Model(timing, Gddr5PowerParams{}), ConfigError);
    timing = Gddr5TimingParams{};
    timing.coreLatencyNs = 0.0;
    EXPECT_THROW(Gddr5Model(timing, Gddr5PowerParams{}), ConfigError);
}
