/**
 * @file
 * Tests for the random workload generator.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/sim/gpu_device.hh"
#include "workloads/generator.hh"

using namespace harmonia;

TEST(Generator, DeterministicBySeed)
{
    WorkloadGenerator a(42);
    WorkloadGenerator b(42);
    const KernelProfile ka = a.randomKernel("app", "k");
    const KernelProfile kb = b.randomKernel("app", "k");
    EXPECT_DOUBLE_EQ(ka.basePhase.workItems, kb.basePhase.workItems);
    EXPECT_DOUBLE_EQ(ka.basePhase.aluInstsPerItem,
                     kb.basePhase.aluInstsPerItem);
    EXPECT_EQ(ka.resources.vgprPerWorkitem,
              kb.resources.vgprPerWorkitem);
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadGenerator a(1);
    WorkloadGenerator b(2);
    const KernelProfile ka = a.randomKernel("app", "k");
    const KernelProfile kb = b.randomKernel("app", "k");
    EXPECT_NE(ka.basePhase.workItems, kb.basePhase.workItems);
}

TEST(Generator, RandomAppIsWellFormed)
{
    WorkloadGenerator gen(7);
    const Application app = gen.randomApp("rand", 5, 10);
    EXPECT_NO_THROW(app.validate());
    EXPECT_EQ(app.kernels.size(), 5u);
    EXPECT_EQ(app.iterations, 10);
}

TEST(Generator, RejectsBadArguments)
{
    WorkloadGenerator gen(1);
    EXPECT_THROW(gen.randomApp("x", 0, 5), ConfigError);
    EXPECT_THROW(gen.randomApp("x", 3, 0), ConfigError);
    GeneratorConfig cfg;
    cfg.maxDivergence = 1.0;
    EXPECT_THROW(WorkloadGenerator(1, cfg), ConfigError);
    cfg = GeneratorConfig{};
    cfg.maxWorkItems = 1.0;
    EXPECT_THROW(WorkloadGenerator(1, cfg), ConfigError);
}

/** Property: every generated kernel validates and runs on the device
 * across configuration extremes. */
class GeneratorSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GeneratorSeedSweep, GeneratedKernelsRunEverywhere)
{
    static GpuDevice device;
    WorkloadGenerator gen(GetParam());
    for (int i = 0; i < 3; ++i) {
        const KernelProfile k =
            gen.randomKernel("prop", "k" + std::to_string(i));
        ASSERT_NO_THROW(k.phase(0));
        for (const HardwareConfig cfg :
             {HardwareConfig{4, 300, 475}, HardwareConfig{32, 1000, 1375},
              HardwareConfig{16, 700, 925}}) {
            const KernelResult r = device.run(k, 0, cfg);
            ASSERT_GT(r.time(), 0.0);
            ASSERT_GT(r.cardEnergy, 0.0);
            ASSERT_NO_THROW(r.timing.counters.validate());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Range<uint64_t>(100, 115));
