/**
 * @file
 * Golden-value regression harness for the campaign figures.
 *
 * Snapshots a small fixed subset of the Figure 10 (normalized ED^2)
 * and Figure 13 (normalized execution time) campaign numbers into
 * tests/golden/campaign_fig10_13.csv and fails with a readable diff
 * when the model drifts. Intentional model changes regenerate the
 * snapshot with:
 *
 *     HARMONIA_UPDATE_GOLDEN=1 ./test_golden_figures
 *
 * which rewrites the checked-in CSV in the source tree.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harmonia/core/campaign.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

#ifndef HARMONIA_GOLDEN_DIR
#error "HARMONIA_GOLDEN_DIR must point at tests/golden"
#endif

const char *kGoldenFile = HARMONIA_GOLDEN_DIR "/campaign_fig10_13.csv";

/** Relative tolerance: golden values carry 17 significant digits, so
 * anything beyond round-trip noise is real model drift. */
constexpr double kRelTol = 1e-12;

struct GoldenRow
{
    std::string figure; ///< "fig10" or "fig13".
    std::string scheme;
    std::string app;
    double value = 0.0;
};

/** The snapshotted subset: 4 apps x 3 schemes x 2 figures. */
const std::vector<std::string> kApps = {"MaxFlops", "CoMD", "BPT",
                                        "Graph500"};
const std::vector<std::pair<Scheme, std::string>> kSchemes = {
    {Scheme::CgOnly, "CG"},
    {Scheme::Harmonia, "Harmonia"},
    {Scheme::Oracle, "Oracle"},
};

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

Campaign
runGoldenCampaign()
{
    std::vector<Application> suite = {makeMaxFlops(), makeComd(),
                                      makeBpt(), makeGraph500()};
    CampaignOptions options;
    options.includeOracle = true;
    options.includeFreqOnly = false;
    // Thread count provably does not change results
    // (test_sweep_determinism), so the harness may run parallel.
    options.jobs = 4;
    Campaign campaign(device(), suite, options);
    campaign.run();
    return campaign;
}

std::vector<GoldenRow>
computeRows(const Campaign &campaign)
{
    std::vector<GoldenRow> rows;
    for (const auto &[figure, metric] :
         std::vector<std::pair<std::string, CampaignMetric>>{
             {"fig10", CampaignMetric::Ed2},
             {"fig13", CampaignMetric::Time}}) {
        for (const auto &[scheme, schemeLabel] : kSchemes) {
            for (const auto &app : kApps) {
                rows.push_back(
                    {figure, schemeLabel, app,
                     campaign.normalized(scheme, app, metric)});
            }
        }
    }
    return rows;
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
writeGolden(const std::vector<GoldenRow> &rows)
{
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out) << "cannot write " << kGoldenFile;
    out << "figure,scheme,app,normalized\n";
    for (const auto &r : rows)
        out << r.figure << ',' << r.scheme << ',' << r.app << ','
            << fmt(r.value) << '\n';
}

std::map<std::string, double>
readGolden()
{
    std::map<std::string, double> golden;
    std::ifstream in(kGoldenFile);
    EXPECT_TRUE(in) << "missing golden file " << kGoldenFile
                    << " — regenerate with HARMONIA_UPDATE_GOLDEN=1";
    std::string line;
    std::getline(in, line); // header
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        std::string figure, scheme, app, value;
        std::getline(ss, figure, ',');
        std::getline(ss, scheme, ',');
        std::getline(ss, app, ',');
        std::getline(ss, value, ',');
        golden[figure + "/" + scheme + "/" + app] = std::stod(value);
    }
    return golden;
}

} // namespace

TEST(GoldenFigures, CampaignSubsetMatchesSnapshot)
{
    const Campaign campaign = runGoldenCampaign();
    const std::vector<GoldenRow> rows = computeRows(campaign);

    if (const char *update = std::getenv("HARMONIA_UPDATE_GOLDEN");
        update && *update && std::string(update) != "0") {
        writeGolden(rows);
        GTEST_SKIP() << "golden snapshot regenerated at " << kGoldenFile;
    }

    const auto golden = readGolden();
    ASSERT_EQ(golden.size(), rows.size())
        << "golden file row count mismatch — regenerate with "
           "HARMONIA_UPDATE_GOLDEN=1 if the subset changed";

    // Collect every mismatch into one readable diff instead of
    // stopping at the first.
    std::ostringstream diff;
    int mismatches = 0;
    for (const auto &r : rows) {
        const std::string key = r.figure + "/" + r.scheme + "/" + r.app;
        auto it = golden.find(key);
        if (it == golden.end()) {
            ++mismatches;
            diff << "  " << key << ": missing from golden file\n";
            continue;
        }
        const double want = it->second;
        const double rel = std::abs(r.value - want) /
                           std::max(std::abs(want), 1e-300);
        if (rel > kRelTol) {
            ++mismatches;
            diff << "  " << key << ": golden=" << fmt(want)
                 << " got=" << fmt(r.value) << " rel-err=" << rel
                 << '\n';
        }
    }
    EXPECT_EQ(mismatches, 0)
        << "campaign drifted from tests/golden/campaign_fig10_13.csv:\n"
        << diff.str()
        << "if intentional, regenerate with HARMONIA_UPDATE_GOLDEN=1";
}

TEST(GoldenFigures, SnapshotValuesAreSane)
{
    // Independent of the snapshot: normalized metrics are positive,
    // finite, and the oracle never loses to the baseline on ED^2.
    const Campaign campaign = runGoldenCampaign();
    for (const auto &app : kApps) {
        for (const auto &[scheme, label] : kSchemes) {
            const double ed2 = campaign.normalized(scheme, app,
                                                   CampaignMetric::Ed2);
            EXPECT_TRUE(std::isfinite(ed2)) << label << "/" << app;
            EXPECT_GT(ed2, 0.0);
        }
        EXPECT_LE(campaign.normalized(Scheme::Oracle, app,
                                      CampaignMetric::Ed2),
                  1.0 + 1e-9)
            << app;
    }
}

#if defined(HARMONIA_EXP_DRIVER) && defined(HARMONIA_FIG10_WRAPPER) && \
    defined(HARMONIA_FIG13_WRAPPER)

namespace
{

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing artifact " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
runQuiet(const std::string &cmd)
{
    return std::system((cmd + " > /dev/null").c_str());
}

} // namespace

TEST(GoldenFigures, DriverMatchesLegacyWrappersBitwise)
{
    // The unified harmonia_exp driver and the per-figure compatibility
    // wrappers must emit byte-identical artifacts: same numbers, same
    // formatting, regardless of which entry point produced them.
    namespace fs = std::filesystem;
    const fs::path base =
        fs::path(::testing::TempDir()) / "harmonia_driver_vs_wrapper";
    const fs::path driverOut = base / "driver";
    const fs::path wrapperOut = base / "wrapper";
    fs::remove_all(base);

    ASSERT_EQ(runQuiet(std::string(HARMONIA_EXP_DRIVER) +
                       " --run fig10 --run fig13 --jobs 2 --out " +
                       driverOut.string()),
              0);
    ASSERT_EQ(runQuiet(std::string(HARMONIA_FIG10_WRAPPER) +
                       " --jobs 2 --out " + wrapperOut.string()),
              0);
    ASSERT_EQ(runQuiet(std::string(HARMONIA_FIG13_WRAPPER) +
                       " --jobs 2 --out " + wrapperOut.string()),
              0);

    for (const char *artifact :
         {"fig10.json", "fig10.csv", "fig13.json", "fig13.csv"}) {
        const std::string fromDriver =
            readFileBytes((driverOut / artifact).string());
        const std::string fromWrapper =
            readFileBytes((wrapperOut / artifact).string());
        ASSERT_FALSE(fromDriver.empty()) << artifact;
        EXPECT_EQ(fromDriver, fromWrapper)
            << artifact
            << " differs between the driver and wrapper paths";
    }
}

#endif // HARMONIA_EXP_DRIVER && wrappers
