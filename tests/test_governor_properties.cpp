/**
 * @file
 * Property tests for the governors under randomized workloads: on any
 * well-formed application, every governor must produce lattice-valid
 * configurations, never crash, and keep performance regressions
 * bounded — the safety contract a runtime power manager must honor on
 * workloads it has never seen.
 */

#include <gtest/gtest.h>

#include "harmonia/core/baseline_governor.hh"
#include "harmonia/core/campaign.hh"
#include "harmonia/core/harmonia_governor.hh"
#include "harmonia/core/runtime.hh"
#include "harmonia/core/training.hh"
#include "workloads/generator.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

/** Predictor trained once on the standard suite; the random apps are
 * out-of-distribution for it, which is the point. */
const SensitivityPredictor &
predictor()
{
    static SensitivityPredictor p =
        trainPredictors(device(), standardSuite()).predictor();
    return p;
}

} // namespace

class GovernorRandomApps : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GovernorRandomApps, HarmoniaIsSafeOnUnseenWorkloads)
{
    WorkloadGenerator gen(GetParam());
    const Application app = gen.randomApp("rand", 3, 12);

    Runtime runtime(device());
    BaselineGovernor baseline(device().space());
    HarmoniaGovernor harmonia(device().space(), predictor());

    const AppRunResult base = runtime.run(app, baseline);
    const AppRunResult hm = runtime.run(app, harmonia);

    // Every decided configuration lies on the lattice.
    for (const auto &t : hm.trace)
        ASSERT_TRUE(device().space().valid(t.config));

    // Bounded regression: the FG feedback loop must keep even
    // mispredicted workloads within 30% of baseline wall time.
    EXPECT_LT(hm.totalTime, base.totalTime * 1.30)
        << "seed " << GetParam();

    // Sanity: energies positive and consistent.
    EXPECT_GT(hm.cardEnergy, 0.0);
    EXPECT_GT(hm.gpuEnergy, 0.0);
    EXPECT_LT(hm.gpuEnergy + hm.memEnergy, hm.cardEnergy);
}

TEST_P(GovernorRandomApps, CgOnlyNeverLeavesTheLattice)
{
    WorkloadGenerator gen(GetParam() + 1000);
    const Application app = gen.randomApp("rand", 2, 8);
    HarmoniaOptions options;
    options.enableFg = false;
    HarmoniaGovernor governor(device().space(), predictor(), options);
    const AppRunResult run = Runtime(device()).run(app, governor);
    for (const auto &t : run.trace)
        ASSERT_TRUE(device().space().valid(t.config));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GovernorRandomApps,
                         ::testing::Range<uint64_t>(2000, 2012));

TEST(GovernorProperties, HarmoniaNeverWorseThanBaselineOnAveragePower)
{
    // Across the standard suite, Harmonia must not *raise* power.
    Runtime runtime(device());
    for (const auto &app : standardSuite()) {
        BaselineGovernor baseline(device().space());
        HarmoniaGovernor harmonia(device().space(), predictor());
        const AppRunResult base = runtime.run(app, baseline);
        const AppRunResult hm = runtime.run(app, harmonia);
        EXPECT_LE(hm.averagePower(), base.averagePower() * 1.005)
            << app.name;
    }
}

TEST(GovernorProperties, HarmoniaIsIdempotentAcrossRepeatedRuns)
{
    Runtime runtime(device());
    const Application app = appByName("Sort");
    HarmoniaGovernor governor(device().space(), predictor());
    const AppRunResult a = runtime.run(app, governor);
    const AppRunResult b = runtime.run(app, governor);
    EXPECT_DOUBLE_EQ(a.totalTime, b.totalTime);
    EXPECT_DOUBLE_EQ(a.cardEnergy, b.cardEnergy);
}
