/**
 * @file
 * Tests for the string-keyed governor factory registry
 * (core/governor_registry.hh): built-in names, case-insensitive
 * lookup, structured errors for unknown names and incomplete specs,
 * and third-party registration.
 */

#include "harmonia/core/governor_registry.hh"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

class GovernorRegistryTest : public ::testing::Test
{
  protected:
    GpuDevice device_;
};

TEST_F(GovernorRegistryTest, BuiltInsAreRegistered)
{
    GovernorRegistry &reg = GovernorRegistry::instance();
    for (const char *name :
         {"baseline", "cg", "harmonia", "freq-only", "oracle"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    const std::vector<std::string> names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_GE(names.size(), 5u);
}

TEST_F(GovernorRegistryTest, LookupIsCaseInsensitive)
{
    GovernorRegistry &reg = GovernorRegistry::instance();
    EXPECT_TRUE(reg.contains("BASELINE"));
    EXPECT_TRUE(reg.contains("Harmonia"));

    GovernorSpec spec;
    spec.device = &device_;
    Result<std::unique_ptr<Governor>> g = reg.make("Baseline", spec);
    ASSERT_TRUE(g.ok()) << g.status().str();
    EXPECT_NE(*g, nullptr);
}

TEST_F(GovernorRegistryTest, UnknownNameIsNotFound)
{
    GovernorSpec spec;
    spec.device = &device_;
    Result<std::unique_ptr<Governor>> g =
        makeGovernor("no-such-policy", spec);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::NotFound);
    EXPECT_NE(g.status().message().find("no-such-policy"),
              std::string::npos);
}

TEST_F(GovernorRegistryTest, MissingDeviceIsInvalidArgument)
{
    Result<std::unique_ptr<Governor>> g =
        makeGovernor("baseline", GovernorSpec{});
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::InvalidArgument);
}

TEST_F(GovernorRegistryTest, PredictorGovernorsRequirePredictor)
{
    GovernorSpec spec;
    spec.device = &device_;
    for (const char *name : {"cg", "harmonia", "freq-only"}) {
        Result<std::unique_ptr<Governor>> g = makeGovernor(name, spec);
        ASSERT_FALSE(g.ok()) << name;
        EXPECT_EQ(g.status().code(), StatusCode::InvalidArgument)
            << name;
        // The serve layer keys lazy training off this wording.
        EXPECT_NE(g.status().message().find("predictor"),
                  std::string::npos)
            << name;
    }
}

TEST_F(GovernorRegistryTest, BaselineAndOracleBuildWithoutPredictor)
{
    GovernorSpec spec;
    spec.device = &device_;
    for (const char *name : {"baseline", "oracle"}) {
        Result<std::unique_ptr<Governor>> g = makeGovernor(name, spec);
        ASSERT_TRUE(g.ok()) << name << ": " << g.status().str();
        EXPECT_FALSE((*g)->name().empty());
    }
}

TEST_F(GovernorRegistryTest, AddRejectsEmptyAndDuplicateNames)
{
    GovernorRegistry &reg = GovernorRegistry::instance();
    auto factory = [](const GovernorSpec &)
        -> Result<std::unique_ptr<Governor>> {
        return Status::invalidArgument("stub");
    };

    EXPECT_EQ(reg.add("", factory).code(), StatusCode::InvalidArgument);
    EXPECT_EQ(reg.add("baseline", factory).code(),
              StatusCode::InvalidArgument);
    // Duplicate check is case-insensitive like lookup.
    EXPECT_EQ(reg.add("BaseLine", factory).code(),
              StatusCode::InvalidArgument);
}

TEST_F(GovernorRegistryTest, ThirdPartyRegistrationIsReachable)
{
    GovernorRegistry &reg = GovernorRegistry::instance();
    const std::string name = "test-registry-custom";
    if (!reg.contains(name)) {
        const Status added = reg.add(
            name,
            [](const GovernorSpec &spec)
                -> Result<std::unique_ptr<Governor>> {
                if (spec.device == nullptr)
                    return Status::invalidArgument(
                        "custom: device required");
                return Status::notFound("custom: not buildable");
            });
        ASSERT_TRUE(added.ok()) << added.str();
    }
    EXPECT_TRUE(reg.contains(name));
    // Stored lowercase, looked up case-insensitively.
    EXPECT_TRUE(reg.contains("TEST-REGISTRY-CUSTOM"));

    GovernorSpec spec;
    spec.device = &device_;
    Result<std::unique_ptr<Governor>> g = reg.make(name, spec);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::NotFound);
}

} // namespace
