/**
 * @file
 * Unit tests for the GpuDevice facade: energy accounting and the
 * consistency of the combined timing + power results.
 */

#include <gtest/gtest.h>

#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

} // namespace

TEST(GpuDevice, EnergyEqualsAveragePowerTimesTime)
{
    const KernelProfile k = makeComd().kernels.front();
    const KernelResult r =
        device().run(k, 0, device().space().maxConfig());
    EXPECT_NEAR(r.cardEnergy, r.power.total() * r.time(),
                1e-6 * r.cardEnergy);
}

TEST(GpuDevice, EnergyDecomposesIntoGpuMemOther)
{
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const KernelResult r =
        device().run(k, 0, device().space().maxConfig());
    EXPECT_GT(r.gpuEnergy, 0.0);
    EXPECT_GT(r.memEnergy, 0.0);
    EXPECT_LT(r.gpuEnergy + r.memEnergy, r.cardEnergy);
    const double other = r.cardEnergy - r.gpuEnergy - r.memEnergy;
    EXPECT_NEAR(other, r.power.other * r.time(), 1e-6 * r.cardEnergy);
}

TEST(GpuDevice, EdAndEd2Definitions)
{
    const KernelProfile k = makeComd().kernels.front();
    const KernelResult r =
        device().run(k, 0, device().space().maxConfig());
    EXPECT_DOUBLE_EQ(r.ed(), r.cardEnergy * r.time());
    EXPECT_DOUBLE_EQ(r.ed2(), r.cardEnergy * r.time() * r.time());
}

TEST(GpuDevice, LowerFrequencyLowersPower)
{
    const KernelProfile k = makeComd().kernels.front();
    const double pHi =
        device().run(k, 0, {32, 1000, 1375}).power.total();
    const double pLo =
        device().run(k, 0, {32, 500, 1375}).power.total();
    EXPECT_LT(pLo, pHi);
}

TEST(GpuDevice, FewerCusLowerPower)
{
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const double p32 =
        device().run(k, 0, {32, 1000, 1375}).power.total();
    const double p8 =
        device().run(k, 0, {8, 1000, 1375}).power.total();
    EXPECT_LT(p8, p32);
}

TEST(GpuDevice, LowerMemFrequencyLowersPower)
{
    const KernelProfile k = makeMaxFlops().kernels.front();
    const double pHi =
        device().run(k, 0, {32, 1000, 1375}).power.total();
    const double pLo =
        device().run(k, 0, {32, 1000, 475}).power.total();
    EXPECT_LT(pLo, pHi);
}

TEST(GpuDevice, RunByIterationMatchesExplicitPhase)
{
    const KernelProfile k = appByName("Graph500").kernel("BottomStepUp");
    const HardwareConfig cfg = device().space().maxConfig();
    const KernelResult a = device().run(k, 3, cfg);
    const KernelResult b = device().run(k, k.phase(3), cfg);
    EXPECT_DOUBLE_EQ(a.time(), b.time());
    EXPECT_DOUBLE_EQ(a.cardEnergy, b.cardEnergy);
}

TEST(GpuDevice, PowerBreakdownComponentsNonNegative)
{
    for (const auto &app : standardSuite()) {
        for (const auto &k : app.kernels) {
            const KernelResult r =
                device().run(k, 0, {16, 700, 925});
            EXPECT_GE(r.power.gpu.cuDynamic, 0.0);
            EXPECT_GE(r.power.gpu.uncoreDynamic, 0.0);
            EXPECT_GE(r.power.gpu.leakage, 0.0);
            EXPECT_GE(r.power.mem.total(), 0.0);
            EXPECT_GE(r.power.other, 0.0);
        }
    }
}

TEST(GpuDevice, CardPowerWithinPlausibleEnvelope)
{
    // Total card power must stay within a sane envelope for a 250 W
    // TDP part across the whole suite and configuration extremes.
    for (const auto &app : standardSuite()) {
        for (const auto &k : app.kernels) {
            for (const HardwareConfig cfg :
                 {HardwareConfig{32, 1000, 1375},
                  HardwareConfig{4, 300, 475}}) {
                const double p = device().run(k, 0, cfg).power.total();
                EXPECT_GT(p, 10.0) << k.id() << " @ " << cfg.str();
                EXPECT_LT(p, 260.0) << k.id() << " @ " << cfg.str();
            }
        }
    }
}
