/**
 * @file
 * Unit tests for the GPU chip power model.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/power/gpu_power.hh"

using namespace harmonia;

namespace
{

GpuPowerModel
model()
{
    return GpuPowerModel(hd7970());
}

} // namespace

TEST(GpuPower, VoltageComesFromDpmTable)
{
    const GpuPowerModel m = model();
    EXPECT_DOUBLE_EQ(m.voltage(1000.0), 1.19);
    EXPECT_DOUBLE_EQ(m.voltage(300.0), 0.85);
}

TEST(GpuPower, DynamicPowerScalesWithVSquaredF)
{
    const GpuPowerModel m = model();
    const auto hi = m.power({32, 1000, 1375}, 100.0, 1.0);
    const auto lo = m.power({32, 300, 1375}, 100.0, 1.0);
    const double vRatio = 0.85 / 1.19;
    const double expected = vRatio * vRatio * 0.3;
    EXPECT_NEAR(lo.cuDynamic / hi.cuDynamic, expected, 1e-9);
    EXPECT_NEAR(lo.uncoreDynamic / hi.uncoreDynamic, expected, 1e-9);
}

TEST(GpuPower, PowerGatingScalesCuComponents)
{
    const GpuPowerModel m = model();
    const auto all = m.power({32, 1000, 1375}, 100.0, 0.5);
    const auto quarter = m.power({8, 1000, 1375}, 100.0, 0.5);
    EXPECT_NEAR(quarter.cuDynamic / all.cuDynamic, 0.25, 1e-9);
    // Gated CUs leak nothing; the uncore leak floor remains.
    EXPECT_LT(quarter.leakage, all.leakage);
    EXPECT_GT(quarter.leakage, 0.0);
    // Uncore dynamic power is independent of CU count.
    EXPECT_DOUBLE_EQ(quarter.uncoreDynamic, all.uncoreDynamic);
}

TEST(GpuPower, ActivityRaisesPowerAboveFloor)
{
    const GpuPowerModel m = model();
    const auto idle = m.power({32, 1000, 1375}, 0.0, 0.0);
    const auto busy = m.power({32, 1000, 1375}, 100.0, 1.0);
    EXPECT_GT(busy.total(), idle.total());
    // The clock-tree floor keeps idle dynamic power non-zero.
    EXPECT_GT(idle.cuDynamic, 0.0);
    EXPECT_NEAR(idle.cuDynamic / busy.cuDynamic,
                m.params().activityFloor, 1e-9);
}

TEST(GpuPower, IdlePowerEqualsZeroActivity)
{
    const GpuPowerModel m = model();
    const HardwareConfig cfg{16, 700, 925};
    EXPECT_DOUBLE_EQ(m.idlePower(cfg).total(),
                     m.power(cfg, 0.0, 0.0).total());
}

TEST(GpuPower, LeakageFallsWithVoltage)
{
    const GpuPowerModel m = model();
    const auto hi = m.power({32, 1000, 1375}, 50.0, 0.5);
    const auto lo = m.power({32, 300, 1375}, 50.0, 0.5);
    const double vr = 0.85 / 1.19;
    EXPECT_NEAR(lo.leakage / hi.leakage, vr * vr, 1e-9);
}

TEST(GpuPower, MaxPowerIsPlausibleForHd7970)
{
    // Fully busy chip at boost should land in the 100-200 W band the
    // paper's measurements imply for GPUPwr.
    const GpuPowerModel m = model();
    const double p = m.power({32, 1000, 1375}, 100.0, 1.0).total();
    EXPECT_GT(p, 100.0);
    EXPECT_LT(p, 220.0);
}

TEST(GpuPower, TotalSumsComponents)
{
    const auto p = model().power({20, 800, 925}, 60.0, 0.4);
    EXPECT_DOUBLE_EQ(p.total(),
                     p.cuDynamic + p.uncoreDynamic + p.leakage);
}

TEST(GpuPower, RejectsBadInputs)
{
    const GpuPowerModel m = model();
    EXPECT_THROW(m.power({32, 1000, 1375}, -1.0, 0.5), ConfigError);
    EXPECT_THROW(m.power({32, 1000, 1375}, 101.0, 0.5), ConfigError);
    EXPECT_THROW(m.power({32, 1000, 1375}, 50.0, 1.5), ConfigError);
    GpuPowerParams params;
    params.activityFloor = 1.5;
    EXPECT_THROW(
        GpuPowerModel(hd7970(), hd7970ComputeDpm(), params),
        ConfigError);
}
