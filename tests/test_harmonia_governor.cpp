/**
 * @file
 * Controller-level tests for the Harmonia governor: the CG and FG
 * behaviours of Algorithm 1 are exercised with scripted counter
 * streams so every decision path is observable.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/harmonia_governor.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

/** Predictor with transparent semantics: bandwidth sensitivity =
 * icActivity, compute sensitivity = VALUBusy/100. */
SensitivityPredictor
transparentPredictor()
{
    LinearSensitivityModel bw;
    bw.intercept = 0.0;
    bw.coeffs = {0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
    LinearSensitivityModel comp;
    comp.intercept = 0.0;
    comp.coeffs = {0.0, 0.0, 0.0, 0.01, 0.0};
    return SensitivityPredictor(std::move(bw), std::move(comp));
}

/** Counters that produce the given (compute, bandwidth) predictions
 * under the transparent predictor, with fixed work. */
CounterSet
countersFor(double computeSens, double bandwidthSens)
{
    CounterSet c;
    c.valuBusy = computeSens * 100.0;
    c.icActivity = bandwidthSens;
    c.valuUtilization = 100.0;
    c.valuInsts = 1e6;
    c.vfetchInsts = 1e5;
    c.vwriteInsts = 1e4;
    return c;
}

KernelProfile
testKernel()
{
    KernelProfile k;
    k.app = "t";
    k.name = "k";
    return k;
}

/** Drive one decide/observe cycle and return the decided config. */
HardwareConfig
step(HarmoniaGovernor &governor, const KernelProfile &kernel, int iter,
     const CounterSet &counters, double execTime)
{
    const HardwareConfig cfg = governor.decide(kernel, iter);
    KernelSample s;
    s.kernelId = kernel.id();
    s.iteration = iter;
    s.config = cfg;
    s.counters = counters;
    s.execTime = execTime;
    s.cardEnergy = 0.1;
    governor.observe(s);
    return cfg;
}

} // namespace

TEST(Harmonia, FirstDecisionIsMaxConfig)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    EXPECT_EQ(governor.decide(testKernel(), 0), space.maxConfig());
}

TEST(Harmonia, CgAppliesBinTargetsAfterFirstObservation)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    // LOW compute (0.1), LOW bandwidth (0.1).
    step(governor, k, 0, countersFor(0.1, 0.1), 1e-3);
    const HardwareConfig cfg = governor.decide(k, 1);
    const HarmoniaOptions &opt = governor.options();
    EXPECT_EQ(cfg.cuCount, opt.cuTargets[0]);
    EXPECT_EQ(cfg.computeFreqMhz, opt.freqTargets[0]);
    EXPECT_EQ(cfg.memFreqMhz, opt.memTargets[0]);
}

TEST(Harmonia, HighBinsKeepMaximumConfig)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    step(governor, k, 0, countersFor(0.9, 0.9), 1e-3);
    EXPECT_EQ(governor.decide(k, 1), space.maxConfig());
}

TEST(Harmonia, LastBinsExposed)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    EXPECT_FALSE(governor.lastBins(k.id()).has_value());
    step(governor, k, 0, countersFor(0.5, 0.9), 1e-3);
    const auto bins = governor.lastBins(k.id());
    ASSERT_TRUE(bins.has_value());
    EXPECT_EQ(bins->compute, SensitivityBin::Med);
    EXPECT_EQ(bins->bandwidth, SensitivityBin::High);
}

TEST(Harmonia, FgDescendsWhilePerformanceHolds)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    // MED/MED bins: CU at 32, freq at max, mem at 925; CU and freq and
    // mem are all eligible for FG probing (no HIGH bins).
    const CounterSet c = countersFor(0.5, 0.5);
    HardwareConfig cfg = space.maxConfig();
    for (int iter = 0; iter < 6; ++iter)
        cfg = step(governor, k, iter, c, 1e-3); // perf never degrades
    // The descent must have moved below the CG anchor.
    const HarmoniaOptions &opt = governor.options();
    EXPECT_LT(cfg.cuCount, 32);
    EXPECT_LE(cfg.memFreqMhz, opt.memTargets[1]);
}

TEST(Harmonia, FgRevertsAndLocksOnDegradation)
{
    const ConfigSpace space(hd7970());
    HarmoniaOptions options;
    options.maxDither = 1;
    HarmoniaGovernor governor(space, transparentPredictor(), options);
    const KernelProfile k = testKernel();
    const CounterSet c = countersFor(0.5, 0.9); // bw HIGH: mem pinned

    // Simulated device: any config below max runs 30% slower.
    const HardwareConfig maxCfg = space.maxConfig();
    HardwareConfig cfg = maxCfg;
    for (int iter = 0; iter < 12; ++iter) {
        cfg = governor.decide(k, iter);
        KernelSample s;
        s.kernelId = k.id();
        s.iteration = iter;
        s.config = cfg;
        s.counters = c;
        s.execTime = cfg == maxCfg ? 1e-3 : 1.3e-3;
        s.cardEnergy = 0.1;
        governor.observe(s);
    }
    // After enough failed probes every tunable locks and the governor
    // settles back at the maximum configuration.
    EXPECT_EQ(governor.decide(k, 12), maxCfg);
}

TEST(Harmonia, RecoversFromCgOvershootByJumpingToLastGood)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    // LOW/LOW bins -> aggressive CG target; the "device" runs 2x
    // slower anywhere below max config. Bins never change.
    const CounterSet c = countersFor(0.1, 0.1);
    const HardwareConfig maxCfg = space.maxConfig();
    int recoveredAt = -1;
    for (int iter = 0; iter < 8; ++iter) {
        const HardwareConfig cfg = governor.decide(k, iter);
        if (iter >= 1 && cfg == maxCfg && recoveredAt < 0)
            recoveredAt = iter;
        KernelSample s;
        s.kernelId = k.id();
        s.iteration = iter;
        s.config = cfg;
        s.counters = c;
        s.execTime = cfg == maxCfg ? 1e-3 : 2e-3;
        s.cardEnergy = 0.1;
        governor.observe(s);
    }
    ASSERT_GE(recoveredAt, 0) << "never recovered to the max config";
    EXPECT_LE(recoveredAt, 3); // one-jump convergence, not a walk
}

TEST(Harmonia, PhaseJumpReusesConvergedConfiguration)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    const CounterSet phaseA = countersFor(0.9, 0.1); // comp HIGH
    const CounterSet phaseB = countersFor(0.1, 0.9); // bw HIGH

    // Converge phase A for several iterations.
    for (int iter = 0; iter < 4; ++iter)
        step(governor, k, iter, phaseA, 1e-3);
    const HardwareConfig aConfig = governor.decide(k, 4);

    // One iteration of phase B, then phase A returns: the governor
    // must jump straight back to A's configuration.
    step(governor, k, 4, phaseB, 1e-3);
    step(governor, k, 5, phaseA, 1e-3);
    EXPECT_EQ(governor.decide(k, 6), aConfig);
}

TEST(Harmonia, FreqFloorGuardsCrossingForMemHeavyKernels)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    // Compute LOW would normally drop the frequency to 700 MHz, but
    // icActivity 0.5 at 264 GB/s with a 65% L2 hit rate implies
    // ~380 GB/s of L2-side traffic -> the compute clock must stay
    // high enough to source it (Figure 9's guard).
    CounterSet c = countersFor(0.1, 0.5);
    c.l2CacheHit = 65.0;
    step(governor, k, 0, c, 1e-3);
    const HardwareConfig cfg = governor.decide(k, 1);
    EXPECT_GE(cfg.computeFreqMhz, 800);
}

TEST(Harmonia, VolatilePhasesSuppressFgProbes)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    // Alternate bins every iteration: FG must not schedule probes.
    const CounterSet a = countersFor(0.9, 0.2);
    const CounterSet b = countersFor(0.9, 0.8);
    HardwareConfig prevA;
    for (int iter = 0; iter < 10; ++iter) {
        const CounterSet &c = iter % 2 ? b : a;
        const HardwareConfig cfg = step(governor, k, iter, c, 1e-3);
        if (iter >= 6 && iter % 2 == 0) {
            if (iter > 6) {
                EXPECT_EQ(cfg, prevA); // stable per-phase configs
            }
            prevA = cfg;
        }
    }
}

TEST(Harmonia, CgOnlyAppliesTargetsWithoutFeedback)
{
    const ConfigSpace space(hd7970());
    HarmoniaOptions options;
    options.enableFg = false;
    HarmoniaGovernor governor(space, transparentPredictor(), options);
    EXPECT_EQ(governor.name(), "CG-only");
    const KernelProfile k = testKernel();
    const CounterSet c = countersFor(0.5, 0.5);
    HardwareConfig cfg = space.maxConfig();
    // Even with a 40% slowdown, CG-only holds the bin targets.
    for (int iter = 0; iter < 6; ++iter) {
        const double t = cfg == space.maxConfig() ? 1e-3 : 1.4e-3;
        cfg = step(governor, k, iter, c, t);
    }
    EXPECT_EQ(cfg.memFreqMhz, governor.options().memTargets[1]);
}

TEST(Harmonia, FreqOnlyAblationTouchesOnlyFrequency)
{
    const ConfigSpace space(hd7970());
    HarmoniaOptions options;
    options.tunableEnabled = {false, true, false};
    HarmoniaGovernor governor(space, transparentPredictor(), options);
    EXPECT_EQ(governor.name(), "Harmonia(partial)");
    const KernelProfile k = testKernel();
    HardwareConfig cfg = space.maxConfig();
    for (int iter = 0; iter < 6; ++iter)
        cfg = step(governor, k, iter, countersFor(0.1, 0.1), 1e-3);
    EXPECT_EQ(cfg.cuCount, 32);
    EXPECT_EQ(cfg.memFreqMhz, 1375);
    EXPECT_LT(cfg.computeFreqMhz, 1000);
}

TEST(Harmonia, ResetForgetsHistory)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    const KernelProfile k = testKernel();
    step(governor, k, 0, countersFor(0.1, 0.1), 1e-3);
    EXPECT_NE(governor.decide(k, 1), space.maxConfig());
    governor.reset();
    EXPECT_EQ(governor.decide(k, 0), space.maxConfig());
    EXPECT_FALSE(governor.lastBins(k.id()).has_value());
}

TEST(Harmonia, ObserveWithoutDecidePanics)
{
    const ConfigSpace space(hd7970());
    HarmoniaGovernor governor(space, transparentPredictor());
    KernelSample s;
    s.kernelId = "never.seen";
    EXPECT_THROW(governor.observe(s), InternalError);
}

TEST(Harmonia, OptionValidation)
{
    const ConfigSpace space(hd7970());
    HarmoniaOptions options;
    options.enableCg = false;
    options.enableFg = false;
    EXPECT_THROW(
        HarmoniaGovernor(space, transparentPredictor(), options),
        ConfigError);

    options = HarmoniaOptions{};
    options.maxDither = 0;
    EXPECT_THROW(
        HarmoniaGovernor(space, transparentPredictor(), options),
        ConfigError);

    options = HarmoniaOptions{};
    options.tunableEnabled = {false, false, false};
    EXPECT_THROW(
        HarmoniaGovernor(space, transparentPredictor(), options),
        ConfigError);

    options = HarmoniaOptions{};
    options.memTargets = {475, 950, 1375}; // 950 off-lattice
    EXPECT_THROW(
        HarmoniaGovernor(space, transparentPredictor(), options),
        ConfigError);
}
