/**
 * @file
 * End-to-end integration tests: the full pipeline (train predictors,
 * run the suite under every scheme) must reproduce the paper's
 * headline orderings — Harmonia improves ED^2 over the baseline with
 * near-zero performance loss, CG-only is worse than FG+CG, and the
 * oracle bounds everything.
 */

#include <gtest/gtest.h>

#include "harmonia/core/campaign.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

Campaign &
fullCampaign()
{
    static GpuDevice device;
    static Campaign campaign = [] {
        CampaignOptions options;
        options.includeOracle = true;
        options.includeFreqOnly = true;
        Campaign c(device, standardSuite(), options);
        c.run();
        return c;
    }();
    return campaign;
}

double
geo(Scheme s, CampaignMetric m, bool noStress = false)
{
    return fullCampaign().geomeanNormalized(s, m, noStress);
}

} // namespace

TEST(Integration, HarmoniaImprovesEd2Meaningfully)
{
    // Paper: ~12% average ED^2 improvement. Shape target: >= 8%.
    const double improvement = 1.0 - geo(Scheme::Harmonia,
                                         CampaignMetric::Ed2);
    EXPECT_GT(improvement, 0.08);
    EXPECT_LT(improvement, 0.40);
}

TEST(Integration, HarmoniaBeatsCgOnlyOnEd2)
{
    EXPECT_LT(geo(Scheme::Harmonia, CampaignMetric::Ed2),
              geo(Scheme::CgOnly, CampaignMetric::Ed2));
}

TEST(Integration, HarmoniaPerformanceLossIsNegligible)
{
    // Paper: 0.36% average loss. Shape target: < 1.5% geomean.
    const double timeRatio =
        geo(Scheme::Harmonia, CampaignMetric::Time, true);
    EXPECT_LT(timeRatio, 1.015);
}

TEST(Integration, CgOnlyLosesMorePerformanceThanHarmonia)
{
    // Paper: CG-only loses ~2.2% on average (no feedback loop).
    EXPECT_GT(geo(Scheme::CgOnly, CampaignMetric::Time, true),
              geo(Scheme::Harmonia, CampaignMetric::Time, true));
}

TEST(Integration, OracleBoundsAllSchemesOnGeomeanEd2)
{
    const double oracle = geo(Scheme::Oracle, CampaignMetric::Ed2);
    for (Scheme s : {Scheme::Baseline, Scheme::CgOnly,
                     Scheme::Harmonia, Scheme::FreqOnly})
        EXPECT_LE(oracle, geo(s, CampaignMetric::Ed2) + 1e-9);
}

TEST(Integration, FreqOnlyAblationIsMuchWeaker)
{
    // Paper Section 7.2: compute DVFS alone gains only ~3% ED^2.
    const double freqOnly =
        1.0 - geo(Scheme::FreqOnly, CampaignMetric::Ed2);
    const double full =
        1.0 - geo(Scheme::Harmonia, CampaignMetric::Ed2);
    EXPECT_LT(freqOnly, 0.5 * full);
}

TEST(Integration, HarmoniaSavesPower)
{
    // Paper: ~12% average card-power saving.
    const double saving =
        1.0 - geo(Scheme::Harmonia, CampaignMetric::Power, true);
    EXPECT_GT(saving, 0.08);
}

TEST(Integration, BptSeesThePaperPerformanceGain)
{
    // Paper: BPT gains ~11% performance from CU power gating.
    const double speedup =
        1.0 / fullCampaign().normalized(Scheme::Harmonia, "BPT",
                                        CampaignMetric::Time) -
        1.0;
    EXPECT_GT(speedup, 0.03);
}

TEST(Integration, StressBenchmarksRetainFullPerformance)
{
    for (const char *app : {"MaxFlops", "DeviceMemory"}) {
        const double ratio = fullCampaign().normalized(
            Scheme::Harmonia, app, CampaignMetric::Time);
        EXPECT_LT(ratio, 1.02) << app;
    }
}

TEST(Integration, NoApplicationCollapsesUnderHarmonia)
{
    // Worst-case guardrail: no app may lose more than 15% wall time.
    for (const auto &app : fullCampaign().appNames()) {
        const double ratio = fullCampaign().normalized(
            Scheme::Harmonia, app, CampaignMetric::Time);
        EXPECT_LT(ratio, 1.15) << app;
    }
}

TEST(Integration, EveryTracedConfigIsOnTheLattice)
{
    static GpuDevice device;
    const ConfigSpace space(hd7970());
    for (Scheme s : fullCampaign().schemes()) {
        for (const auto &app : fullCampaign().appNames()) {
            for (const auto &t : fullCampaign().result(s, app).trace)
                ASSERT_TRUE(space.valid(t.config))
                    << schemeName(s) << "/" << app;
        }
    }
}

TEST(Integration, CampaignIsDeterministic)
{
    static GpuDevice device;
    CampaignOptions options;
    options.includeOracle = false;
    Campaign a(device, {makeSort(), makeStencil()}, options);
    a.run();
    Campaign b(device, {makeSort(), makeStencil()}, options);
    b.run();
    for (const auto &app : a.appNames()) {
        EXPECT_DOUBLE_EQ(
            a.metric(Scheme::Harmonia, app, CampaignMetric::Ed2),
            b.metric(Scheme::Harmonia, app, CampaignMetric::Ed2));
    }
}
