/**
 * @file
 * Tests for the model-invariant checker (src/check/).
 *
 * Strategy: sweep one real kernel across the 448-point lattice, then
 * corrupt copies of the result vector in targeted ways (negative
 * power, non-monotone timing, NaN bandwidth, ...) and assert that
 * exactly the right invariant fires with the right coordinates —
 * plus a clean pass over the genuine model, which is what makes the
 * checker trustworthy as a regression gate.
 */

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "harmonia/check/checker.hh"
#include "harmonia/check/invariants.hh"
#include "harmonia/common/error.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

class InvariantsTest : public ::testing::Test
{
  protected:
    InvariantsTest()
        : predictor_(SensitivityPredictor::paperTable3()),
          app_(makeBpt()), profile_(app_.kernels.front()),
          configs_(device_.space().allConfigs())
    {
        results_.reserve(configs_.size());
        for (const HardwareConfig &cfg : configs_)
            results_.push_back(device_.run(profile_, 0, cfg));
    }

    InvariantContext
    ctx(const std::vector<KernelResult> &results) const
    {
        return InvariantContext{device_,  profile_, 0,         configs_,
                                results,  predictor_, 1e-9};
    }

    /** Run one invariant by id over @p results. */
    std::vector<Diagnostic>
    runOne(const std::string &id,
           const std::vector<KernelResult> &results) const
    {
        return runInvariants(ctx(results), {findInvariant(id)});
    }

    size_t
    indexOf(const HardwareConfig &cfg) const
    {
        return device_.space().indexOf(cfg);
    }

    GpuDevice device_;
    SensitivityPredictor predictor_;
    Application app_;
    KernelProfile profile_;
    std::vector<HardwareConfig> configs_;
    std::vector<KernelResult> results_;
};

TEST_F(InvariantsTest, CatalogIsCompleteAndUnique)
{
    const auto &catalog = standardInvariants();
    EXPECT_EQ(catalog.size(), 11u);
    std::set<std::string> ids;
    for (const Invariant &inv : catalog) {
        EXPECT_FALSE(inv.id().empty());
        EXPECT_FALSE(inv.description().empty());
        EXPECT_TRUE(ids.insert(inv.id()).second)
            << "duplicate invariant id " << inv.id();
    }
    EXPECT_TRUE(ids.count("runtime-monotone-compute-freq"));
    EXPECT_TRUE(ids.count("power-monotone-v2f"));
    EXPECT_TRUE(ids.count("bandwidth-ceiling"));
    EXPECT_TRUE(ids.count("energy-consistency"));
}

TEST_F(InvariantsTest, UnknownInvariantIdThrows)
{
    EXPECT_THROW(findInvariant("no-such-invariant"), ConfigError);
}

TEST_F(InvariantsTest, CleanModelPassesAllInvariants)
{
    const std::vector<Diagnostic> diags = runInvariants(ctx(results_));
    EXPECT_TRUE(diags.empty())
        << "first diagnostic: " << diags.front().str();
}

TEST_F(InvariantsTest, MismatchedResultVectorThrows)
{
    std::vector<KernelResult> truncated(results_.begin(),
                                        results_.end() - 1);
    EXPECT_THROW(runInvariants(ctx(truncated)), ConfigError);
}

TEST_F(InvariantsTest, NegativePowerFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 17;
    broken[at].power.gpu.leakage = -5.0;
    const auto diags = runOne("finite-outputs", broken);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].invariantId, "finite-outputs");
    EXPECT_EQ(diags[0].app, "BPT");
    EXPECT_EQ(diags[0].kernel, profile_.name);
    EXPECT_EQ(diags[0].iteration, 0);
    EXPECT_EQ(diags[0].config, configs_[at]);
    EXPECT_DOUBLE_EQ(diags[0].observed, -5.0);
    EXPECT_NE(diags[0].message.find("leakage"), std::string::npos);
}

TEST_F(InvariantsTest, NanBandwidthFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 100;
    broken[at].timing.bandwidth.effectiveBps =
        std::numeric_limits<double>::quiet_NaN();
    const auto diags = runOne("finite-outputs", broken);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].config, configs_[at]);
    EXPECT_NE(diags[0].message.find("effectiveBps"), std::string::npos);
    EXPECT_NE(diags[0].message.find("not finite"), std::string::npos);
}

TEST_F(InvariantsTest, NonMonotoneComputeFreqTimingFires)
{
    std::vector<KernelResult> broken = results_;
    const HardwareConfig base = device_.space().minConfig();
    const HardwareConfig up =
        device_.space().stepped(base, Tunable::ComputeFreq, 1);
    // Raising the compute clock must never slow the kernel down; make
    // the faster clock twice as slow.
    broken[indexOf(up)].timing.execTime =
        2.0 * broken[indexOf(base)].timing.execTime;
    const auto diags = runOne("runtime-monotone-compute-freq", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].invariantId, "runtime-monotone-compute-freq");
    EXPECT_EQ(diags[0].config, base);
    EXPECT_GT(diags[0].observed, diags[0].expected);
}

TEST_F(InvariantsTest, NonMonotoneMemFreqTimingFires)
{
    std::vector<KernelResult> broken = results_;
    const HardwareConfig base = device_.space().maxConfig();
    const HardwareConfig down =
        device_.space().stepped(base, Tunable::MemFreq, -1);
    broken[indexOf(base)].timing.execTime =
        3.0 * broken[indexOf(down)].timing.execTime;
    const auto diags = runOne("runtime-monotone-mem-freq", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].invariantId, "runtime-monotone-mem-freq");
    EXPECT_EQ(diags[0].config, down);
}

TEST_F(InvariantsTest, EnergyMismatchFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 200;
    broken[at].cardEnergy *= 1.10;
    const auto diags = runOne("energy-consistency", broken);
    // Both power x time and the gpu+mem+other decomposition break.
    ASSERT_GE(diags.size(), 1u);
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.invariantId, "energy-consistency");
        EXPECT_EQ(d.config, configs_[at]);
    }
}

TEST_F(InvariantsTest, BandwidthAboveCeilingFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 3;
    broken[at].timing.bandwidth.effectiveBps = 1.0e15; // 1 PB/s.
    const auto diags = runOne("bandwidth-ceiling", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].config, configs_[at]);
    EXPECT_DOUBLE_EQ(diags[0].observed, 1.0e15);
}

TEST_F(InvariantsTest, OversubscribedOccupancyFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 42;
    broken[at].timing.occupancy.wavesPerSimd = 99;
    const auto diags = runOne("occupancy-bounds", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].invariantId, "occupancy-bounds");
    EXPECT_EQ(diags[0].config, configs_[at]);
}

TEST_F(InvariantsTest, CounterOutOfRangeFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 5;
    broken[at].timing.counters.valuBusy = 150.0;
    const auto diags = runOne("counter-ranges", broken);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("valuBusy"), std::string::npos);
    EXPECT_DOUBLE_EQ(diags[0].observed, 150.0);
    EXPECT_DOUBLE_EQ(diags[0].expected, 100.0);
}

TEST_F(InvariantsTest, PoisonedCountersBreakPredictorRange)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 7;
    broken[at].timing.counters.icActivity =
        std::numeric_limits<double>::quiet_NaN();
    const auto diags = runOne("predictor-range", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].invariantId, "predictor-range");
    EXPECT_EQ(diags[0].config, configs_[at]);
}

TEST_F(InvariantsTest, BrokenTimeDecompositionFires)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 11;
    broken[at].timing.busyTime = 0.5 * broken[at].timing.busyTime;
    const auto diags = runOne("time-decomposition", broken);
    ASSERT_GE(diags.size(), 1u);
    EXPECT_EQ(diags[0].config, configs_[at]);
}

TEST_F(InvariantsTest, DiagnosticStringNamesEverything)
{
    std::vector<KernelResult> broken = results_;
    const size_t at = 17;
    broken[at].power.gpu.leakage = -5.0;
    const auto diags = runOne("finite-outputs", broken);
    ASSERT_EQ(diags.size(), 1u);
    const std::string s = diags[0].str();
    EXPECT_NE(s.find("[finite-outputs]"), std::string::npos);
    EXPECT_NE(s.find("BPT." + profile_.name + "#0"), std::string::npos);
    EXPECT_NE(s.find(configs_[at].str()), std::string::npos);
    EXPECT_NE(s.find("observed="), std::string::npos);
}

// ---- ModelChecker ------------------------------------------------------

TEST_F(InvariantsTest, CheckerCleanOnRealApplication)
{
    const ModelChecker checker(device_);
    const CheckReport report = checker.checkApplication(app_);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.invocations,
              app_.kernels.size() *
                  static_cast<size_t>(app_.iterations));
    EXPECT_EQ(report.points,
              report.invocations * device_.space().size());
    EXPECT_EQ(report.checksRun,
              report.invocations * standardInvariants().size());
}

TEST_F(InvariantsTest, CheckerIterationCap)
{
    CheckOptions options;
    options.maxIterationsPerKernel = 1;
    const ModelChecker checker(device_, options);
    const CheckReport report = checker.checkApplication(app_);
    EXPECT_EQ(report.invocations, app_.kernels.size());
}

TEST_F(InvariantsTest, CheckerInvariantSubset)
{
    CheckOptions options;
    options.invariantIds = {"finite-outputs", "energy-consistency"};
    const ModelChecker checker(device_, options);
    ASSERT_EQ(checker.invariants().size(), 2u);
    EXPECT_EQ(checker.invariants()[0].id(), "finite-outputs");

    CheckOptions bad;
    bad.invariantIds = {"not-an-invariant"};
    EXPECT_THROW(ModelChecker(device_, bad), ConfigError);
}

TEST_F(InvariantsTest, CheckerParallelMatchesSerial)
{
    CheckOptions serial;
    serial.maxIterationsPerKernel = 2;
    CheckOptions parallel = serial;
    parallel.jobs = 4;
    const CheckReport a =
        ModelChecker(device_, serial).checkApplication(app_);
    const CheckReport b =
        ModelChecker(device_, parallel).checkApplication(app_);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.points, b.points);
    EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST_F(InvariantsTest, ReportMergeAccumulates)
{
    CheckReport a;
    a.invocations = 2;
    a.points = 896;
    a.checksRun = 22;
    Diagnostic d;
    d.invariantId = "finite-outputs";
    a.violations.push_back(d);

    CheckReport b;
    b.invocations = 1;
    b.points = 448;
    b.checksRun = 11;

    a.merge(b);
    EXPECT_EQ(a.invocations, 3u);
    EXPECT_EQ(a.points, 1344u);
    EXPECT_EQ(a.checksRun, 33u);
    EXPECT_EQ(a.violations.size(), 1u);
    EXPECT_FALSE(a.clean());
}

} // namespace
