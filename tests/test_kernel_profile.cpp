/**
 * @file
 * Unit tests for kernel phase/profile descriptions.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/timing/kernel_profile.hh"

using namespace harmonia;

TEST(KernelPhase, DefaultsValidate)
{
    EXPECT_NO_THROW(KernelPhase{}.validate());
}

TEST(KernelPhase, ValidationCatchesEachField)
{
    KernelPhase p;
    p.workItems = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.aluInstsPerItem = -1.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.aluInstsPerItem = 0.0;
    p.fetchInstsPerItem = 0.0;
    p.writeInstsPerItem = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.branchDivergence = 1.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.coalescing = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);
    p.coalescing = 1.1;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.l2HitBase = 1.2;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.rowHitFraction = -0.1;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.mlpPerWave = -1.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = KernelPhase{};
    p.streamEfficiency = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(KernelProfile, IdCombinesAppAndName)
{
    KernelProfile k;
    k.app = "App";
    k.name = "Kern";
    EXPECT_EQ(k.id(), "App.Kern");
}

TEST(KernelProfile, PhaseDefaultsToBase)
{
    KernelProfile k;
    k.app = "a";
    k.name = "k";
    k.basePhase.aluInstsPerItem = 33.0;
    const KernelPhase p = k.phase(5);
    EXPECT_DOUBLE_EQ(p.aluInstsPerItem, 33.0);
}

TEST(KernelProfile, PhaseFnReceivesIteration)
{
    KernelProfile k;
    k.app = "a";
    k.name = "k";
    k.phaseFn = [](const KernelPhase &base, int iter) {
        KernelPhase p = base;
        p.workItems = 1000.0 * (iter + 1);
        return p;
    };
    EXPECT_DOUBLE_EQ(k.phase(0).workItems, 1000.0);
    EXPECT_DOUBLE_EQ(k.phase(3).workItems, 4000.0);
}

TEST(KernelProfile, PhaseFnOutputIsValidated)
{
    KernelProfile k;
    k.app = "a";
    k.name = "k";
    k.phaseFn = [](const KernelPhase &base, int) {
        KernelPhase p = base;
        p.workItems = -1.0;
        return p;
    };
    EXPECT_THROW(k.phase(0), ConfigError);
}

TEST(KernelProfile, NegativeIterationThrows)
{
    KernelProfile k;
    k.app = "a";
    k.name = "k";
    EXPECT_THROW(k.phase(-1), ConfigError);
}
