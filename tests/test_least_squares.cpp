/**
 * @file
 * Unit and property tests for the QR least-squares solver and the
 * regression fit wrapper.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/common/rng.hh"
#include "linalg/correlation.hh"
#include "harmonia/linalg/least_squares.hh"

using namespace harmonia;

TEST(LeastSquares, SolvesExactSquareSystem)
{
    const Matrix a = Matrix::fromRows({{2.0, 0.0}, {0.0, 4.0}});
    const Vector x = solveLeastSquares(a, {6.0, 8.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedConsistentSystem)
{
    // y = 1 + 2x sampled at x = 0..3 exactly.
    const Matrix a = Matrix::fromRows({{1.0, 0.0},
                                       {1.0, 1.0},
                                       {1.0, 2.0},
                                       {1.0, 3.0}});
    const Vector x = solveLeastSquares(a, {1.0, 3.0, 5.0, 7.0});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualForInconsistentSystem)
{
    const Matrix a =
        Matrix::fromRows({{1.0}, {1.0}, {1.0}, {1.0}});
    // LS solution of constant fit = mean of targets.
    const Vector x = solveLeastSquares(a, {1.0, 2.0, 3.0, 6.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
}

TEST(LeastSquares, RejectsUnderdetermined)
{
    const Matrix a(1, 2);
    EXPECT_THROW(solveLeastSquares(a, {1.0}), ConfigError);
}

TEST(LeastSquares, RejectsRankDeficient)
{
    const Matrix a = Matrix::fromRows(
        {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
    EXPECT_THROW(solveLeastSquares(a, {1.0, 2.0, 3.0}), ConfigError);
}

TEST(LeastSquares, RejectsSizeMismatch)
{
    const Matrix a(3, 2);
    EXPECT_THROW(solveLeastSquares(a, {1.0, 2.0}), ConfigError);
}

TEST(RegressionFit, RecoversKnownCoefficients)
{
    // y = 0.5 - 1.5 x0 + 2.5 x1 with no noise.
    Rng rng(3);
    const size_t n = 60;
    Matrix x(n, 2);
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        x(i, 1) = rng.uniform(-2.0, 2.0);
        y[i] = 0.5 - 1.5 * x(i, 0) + 2.5 * x(i, 1);
    }
    const RegressionFit fit = fitLinearRegression(x, y);
    ASSERT_EQ(fit.coeffs.size(), 3u);
    EXPECT_NEAR(fit.coeffs[0], 0.5, 1e-9);
    EXPECT_NEAR(fit.coeffs[1], -1.5, 1e-9);
    EXPECT_NEAR(fit.coeffs[2], 2.5, 1e-9);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-9);
    EXPECT_NEAR(fit.correlation, 1.0, 1e-9);
    EXPECT_NEAR(fit.residualNorm, 0.0, 1e-7);
}

TEST(RegressionFit, HandlesNoise)
{
    Rng rng(7);
    const size_t n = 500;
    Matrix x(n, 1);
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        y[i] = 3.0 + 2.0 * x(i, 0) + rng.gaussian(0.0, 0.5);
    }
    const RegressionFit fit = fitLinearRegression(x, y);
    EXPECT_NEAR(fit.coeffs[0], 3.0, 0.15);
    EXPECT_NEAR(fit.coeffs[1], 2.0, 0.03);
    EXPECT_GT(fit.correlation, 0.99);
}

TEST(RegressionFit, PredictAppliesIntercept)
{
    Matrix x = Matrix::fromRows({{0.0}, {1.0}, {2.0}, {3.0}});
    const RegressionFit fit =
        fitLinearRegression(x, {1.0, 3.0, 5.0, 7.0});
    EXPECT_NEAR(fit.predict({10.0}), 21.0, 1e-9);
    EXPECT_THROW(fit.predict({1.0, 2.0}), ConfigError);
}

TEST(RegressionFit, WithoutIntercept)
{
    Matrix x = Matrix::fromRows({{1.0}, {2.0}, {3.0}});
    const RegressionFit fit =
        fitLinearRegression(x, {2.0, 4.0, 6.0}, false);
    ASSERT_EQ(fit.coeffs.size(), 1u);
    EXPECT_NEAR(fit.coeffs[0], 2.0, 1e-10);
    EXPECT_NEAR(fit.predict({5.0}), 10.0, 1e-9);
}

TEST(Correlation, PearsonKnownValues)
{
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}), -1.0, 1e-12);
    EXPECT_NEAR(pearson({1.0, 2.0, 1.0, 2.0}, {5.0, 5.0, 5.0, 5.0}),
                0.0, 1e-12);
}

TEST(Correlation, ErrorsAndEdgeCases)
{
    EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), ConfigError);
    EXPECT_THROW(pearson({}, {}), ConfigError);
    EXPECT_THROW(meanAbsoluteError({}, {}), ConfigError);
}

TEST(Correlation, ErrorMetrics)
{
    EXPECT_DOUBLE_EQ(meanAbsoluteError({1.0, 2.0}, {2.0, 0.0}), 1.5);
    EXPECT_DOUBLE_EQ(rmsError({3.0, 0.0}, {0.0, 4.0}), 3.5355339059327378);
}

TEST(Correlation, StandardizeZeroMeanUnitVar)
{
    Vector v = {1.0, 2.0, 3.0, 4.0};
    standardize(v);
    double m = 0.0;
    double var = 0.0;
    for (double x : v)
        m += x;
    m /= v.size();
    for (double x : v)
        var += (x - m) * (x - m);
    var /= v.size();
    EXPECT_NEAR(m, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);

    Vector constant = {5.0, 5.0};
    standardize(constant);
    EXPECT_DOUBLE_EQ(constant[0], 0.0);
}

TEST(Correlation, ColumnCorrelations)
{
    const Matrix x = Matrix::fromRows(
        {{1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}});
    const Vector y = {1.0, 2.0, 3.0, 4.0};
    const Vector c = columnCorrelations(x, y);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0], 1.0, 1e-12);
    EXPECT_NEAR(c[1], -1.0, 1e-12);
}
