/**
 * @file
 * Unit tests for the source-contract analyzer (src/lint/).
 *
 * Policy mirrors the invariant catalog's: every shipped rule has an
 * in-memory fixture proving it fires — with the right rule id, file,
 * and line — plus a clean counterpart proving it stays quiet on
 * conforming code. A rule that has never fired in a test is assumed
 * broken. The suite ends with the clean-tree gate: the real repo,
 * scanned from HARMONIA_LINT_SOURCE_ROOT with lint-baseline.txt
 * applied, must report zero new findings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harmonia/common/error.hh"
#include "harmonia/lint/linter.hh"

using namespace harmonia;
using namespace harmonia::lint;

namespace
{

std::vector<Diagnostic>
runRule(const std::string &id, const Project &project)
{
    const LintRule *rule = RuleRegistry::instance().find(id);
    EXPECT_NE(rule, nullptr) << "unknown rule " << id;
    if (rule == nullptr)
        return {};
    return runLint(project, {rule});
}

} // namespace

// --- lexer -------------------------------------------------------------

TEST(LintLexer, BlanksCommentsAndStringBodies)
{
    const std::string code = stripCommentsAndStrings(
        "int a; // rand() here\n"
        "const char *s = \"random_device\";\n"
        "/* system_clock\n   spans lines */ int b;\n");
    EXPECT_EQ(code.find("rand"), std::string::npos);
    EXPECT_EQ(code.find("random_device"), std::string::npos);
    EXPECT_EQ(code.find("system_clock"), std::string::npos);
    EXPECT_NE(code.find("int a;"), std::string::npos);
    EXPECT_NE(code.find("int b;"), std::string::npos);
    // Line structure is preserved exactly.
    EXPECT_EQ(std::count(code.begin(), code.end(), '\n'), 4);
}

TEST(LintLexer, HandlesRawStringsEscapesAndDigitSeparators)
{
    const std::string code = stripCommentsAndStrings(
        "auto r = R\"(srand(1); /* not a comment )\" + 1'000'000;\n"
        "char c = '\\''; int after = 2;\n");
    EXPECT_EQ(code.find("srand"), std::string::npos);
    EXPECT_NE(code.find("1'000'000"), std::string::npos);
    EXPECT_NE(code.find("int after = 2;"), std::string::npos);
}

TEST(LintSource, ParsesIncludesAndClassifiesFiles)
{
    const SourceFile f = SourceFile::fromString(
        "src/x/y.cc",
        "#include <vector>\n#include \"common/rng.hh\"\nint x;\n");
    ASSERT_EQ(f.includes().size(), 2u);
    EXPECT_TRUE(f.includes()[0].angled);
    EXPECT_EQ(f.includes()[1].path, "common/rng.hh");
    EXPECT_EQ(f.includes()[1].line, 2);
    EXPECT_TRUE(f.isTranslationUnit());
    EXPECT_FALSE(f.isHeader());
    EXPECT_TRUE(f.under("src/x/"));
}

// --- determinism rules -------------------------------------------------

TEST(LintRules, AmbientRandomnessFiresOnRandomDevice)
{
    const Project p =
        ProjectBuilder()
            .add("src/core/seed.cc",
                 "#include <random>\nstd::random_device rd;\n")
            .build();
    const auto diags = runRule("no-ambient-randomness", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].ruleId, "no-ambient-randomness");
    EXPECT_EQ(diags[0].file, "src/core/seed.cc");
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_FALSE(diags[0].fixHint.empty());
}

TEST(LintRules, AmbientRandomnessFiresOnWallClockSeed)
{
    const Project p =
        ProjectBuilder()
            .add("src/workloads/gen.cc",
                 "#include <ctime>\nlong s = time(nullptr);\n")
            .build();
    const auto diags = runRule("no-ambient-randomness", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, AmbientRandomnessAllowsRngModuleAndCleanCode)
{
    const Project p =
        ProjectBuilder()
            .add("src/common/rng.cc", "unsigned r = rand();\n")
            .add("src/exp/bench.cc",
                 "auto t0 = std::chrono::steady_clock::now();\n"
                 "double execTime = r.time();\n"
                 "double time() const { return execTime; }\n")
            .add("src/core/doc.cc",
                 "// rand() in a comment\n"
                 "const char *why = \"rand() in a string\";\n")
            .build();
    EXPECT_TRUE(runRule("no-ambient-randomness", p).empty());
}

TEST(LintRules, UnorderedIterationFiresOnRangeFor)
{
    const Project p =
        ProjectBuilder()
            .add("src/serve/protocol.cc",
                 "#include <unordered_map>\n"
                 "std::unordered_map<std::string, int> counts;\n"
                 "int total() {\n"
                 "    int t = 0;\n"
                 "    for (const auto &[k, v] : counts)\n"
                 "        t += v;\n"
                 "    return t;\n"
                 "}\n")
            .build();
    const auto diags = runRule("no-unordered-iteration", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/serve/protocol.cc");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, UnorderedIterationAllowsOrderedAndIndexLoops)
{
    const Project p =
        ProjectBuilder()
            .add("src/serve/ok.cc",
                 "#include <map>\n"
                 "#include <unordered_map>\n"
                 "std::map<std::string, int> ordered;\n"
                 "std::unordered_map<std::string, int> cache;\n"
                 "int f() {\n"
                 "    int t = 0;\n"
                 "    for (const auto &kv : ordered)\n"
                 "        t += kv.second;\n"
                 "    for (int i = 0; i < t; ++i)\n"
                 "        t += cache.count(\"k\");\n"
                 "    return t;\n"
                 "}\n")
            .build();
    EXPECT_TRUE(runRule("no-unordered-iteration", p).empty());
}

// --- FP-contract safety ------------------------------------------------

TEST(LintRules, SimdSourceOptionsFiresOnUnflaggedTu)
{
    const Project p =
        ProjectBuilder()
            .withBuildInfo()
            .simdFlagged("src/sim/lattice_evaluator.cc")
            .add("src/sim/lattice_evaluator.cc",
                 "#include \"common/simd.hh\"\n")
            .add("src/core/predictor.cc",
                 "#include \"common/simd.hh\"\n")
            .build();
    const auto diags = runRule("simd-source-options", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/core/predictor.cc");
    EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, SimdSourceOptionsFiresOnHeaderInclude)
{
    const Project p =
        ProjectBuilder()
            .withBuildInfo()
            .add("src/sim/tables.hh",
                 "#pragma once\n#include \"common/simd.hh\"\n")
            .build();
    const auto diags = runRule("simd-source-options", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, SimdSourceOptionsSkipsWithoutBuildInfo)
{
    const Project p =
        ProjectBuilder()
            .add("src/core/x.cc", "#include \"common/simd.hh\"\n")
            .build();
    EXPECT_TRUE(runRule("simd-source-options", p).empty());
}

TEST(LintRules, FmaOutsideShimFires)
{
    const Project p =
        ProjectBuilder()
            .add("src/timing/hot.cc",
                 "double z = std::fma(a, b, c);\n")
            .add("src/common/simd.hh", "double w = std::fma(a, b, c);\n")
            .build();
    const auto diags = runRule("no-fma-outside-shim", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/timing/hot.cc");
}

// --- layering ----------------------------------------------------------

TEST(LintRules, PublicHeaderIsolationFires)
{
    const Project p =
        ProjectBuilder()
            .add("include/harmonia/extra.hh",
                 "#pragma once\n"
                 "#include <vector>\n"
                 "#include \"harmonia/harmonia.hh\"\n"
                 "#include \"core/sweep.hh\"\n")
            .build();
    const auto diags = runRule("public-header-isolation", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 4);
}

TEST(LintRules, FacadeOnlyClientsFires)
{
    const Project p =
        ProjectBuilder()
            .add("tools/mytool.cc",
                 "#include <iostream>\n"
                 "#include \"harmonia/harmonia.hh\"\n"
                 "#include \"serve/json.hh\"\n")
            .add("examples/demo.cpp",
                 "#include \"harmonia/harmonia.hh\"\n")
            .add("src/core/internal.cc",
                 "#include \"core/sweep.hh\"\n")
            .build();
    const auto diags = runRule("facade-only-clients", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "tools/mytool.cc");
    EXPECT_EQ(diags[0].line, 3);
}

TEST(LintRules, DeviceViaRegistryFiresOnRawFactoryCall)
{
    const Project p =
        ProjectBuilder()
            .add("src/core/tuner.cc",
                 "#include \"arch/gcn_config.hh\"\n"
                 "GcnDeviceConfig cfg = hd7970();\n")
            .build();
    const auto diags = runRule("device-via-registry", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].ruleId, "device-via-registry");
    EXPECT_EQ(diags[0].file, "src/core/tuner.cc");
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_FALSE(diags[0].fixHint.empty());
}

TEST(LintRules, DeviceViaRegistryAllowsRegistryArchAndNonCalls)
{
    const Project p =
        ProjectBuilder()
            .add("src/sim/device_registry.cc",
                 "DeviceProfile p; p.config = hd7970();\n")
            .add("src/arch/gcn_config.cc",
                 "GcnDeviceConfig hd7970() { return {}; }\n")
            // The DPM-table helper is a different symbol; the name
            // alone (a comment-stripped string key) is not a call.
            .add("src/power/gpu_power.cc",
                 "DpmTable dpm = hd7970ComputeDpm();\n"
                 "const char *key = hd7970;\n")
            .add("tests/test_device_registry.cpp",
                 "GcnDeviceConfig cfg = hd7970();\n")
            .build();
    EXPECT_TRUE(runRule("device-via-registry", p).empty());
}

TEST(LintRules, ServeNoThrowFires)
{
    const Project p =
        ProjectBuilder()
            .add("src/serve/handler.cc",
                 "void f() {\n    throw 1;\n}\n")
            .add("src/core/deep.cc", "void g() { throw 2; }\n")
            .build();
    const auto diags = runRule("serve-no-throw", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/serve/handler.cc");
    EXPECT_EQ(diags[0].line, 2);
}

// The serving binaries are under the same no-throw contract as the
// library: a daemon or load-client that unwinds drops connections.
TEST(LintRules, ServeNoThrowCoversServingTools)
{
    const Project p =
        ProjectBuilder()
            .add("tools/harmoniad.cc", "void f() { throw 1; }\n")
            .add("tools/harmonia_client.cpp",
                 "void g() { throw 2; }\n")
            .add("tools/other_tool.cc", "void h() { throw 3; }\n")
            .build();
    const auto diags = runRule("serve-no-throw", p);
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].file, "tools/harmonia_client.cpp");
    EXPECT_EQ(diags[1].file, "tools/harmoniad.cc");
}

// --- hygiene -----------------------------------------------------------

TEST(LintRules, HeaderGuardFiresOnUnguardedHeader)
{
    const Project p =
        ProjectBuilder()
            .add("src/arch/bad.hh", "/* doc */\nint f();\n")
            .add("src/arch/pragma.hh", "#pragma once\nint g();\n")
            .add("src/arch/guarded.hh",
                 "#ifndef HARMONIA_ARCH_GUARDED_HH\n"
                 "#define HARMONIA_ARCH_GUARDED_HH\n"
                 "int h();\n"
                 "#endif\n")
            .build();
    const auto diags = runRule("header-guard", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/arch/bad.hh");
    EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, HeaderGuardRejectsMismatchedDefine)
{
    const Project p =
        ProjectBuilder()
            .add("src/arch/typo.hh",
                 "#ifndef HARMONIA_A_HH\n#define HARMONIA_B_HH\n")
            .build();
    EXPECT_EQ(runRule("header-guard", p).size(), 1u);
}

TEST(LintRules, UsingNamespaceInHeaderFires)
{
    const Project p =
        ProjectBuilder()
            .add("src/core/bad.hh",
                 "#pragma once\nusing namespace std;\n")
            .add("tools/fine.cc", "using namespace harmonia;\n")
            .add("src/core/decl.hh",
                 "#pragma once\nusing harmonia::Rng;\n"
                 "namespace harmonia {}\n")
            .build();
    const auto diags = runRule("no-using-namespace-in-headers", p);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/core/bad.hh");
    EXPECT_EQ(diags[0].line, 2);
}

// --- registry, baseline, report ----------------------------------------

TEST(LintRegistry, CatalogIsCompleteSortedAndSearchable)
{
    const auto rules = RuleRegistry::instance().all();
    EXPECT_EQ(rules.size(), 10u);
    EXPECT_TRUE(std::is_sorted(
        rules.begin(), rules.end(),
        [](const LintRule *a, const LintRule *b) {
            return a->id() < b->id();
        }));
    for (const LintRule *rule : rules) {
        EXPECT_FALSE(rule->description().empty());
        EXPECT_EQ(RuleRegistry::instance().find(rule->id()), rule);
    }
    EXPECT_EQ(RuleRegistry::instance().find("no-such-rule"), nullptr);
}

TEST(LintBaseline, SuppressesListedFindingsAndReportsStale)
{
    const Project p =
        ProjectBuilder()
            .add("src/core/seed.cc", "std::random_device rd;\n")
            .build();
    auto diags = runRule("no-ambient-randomness", p);
    ASSERT_EQ(diags.size(), 1u);

    const Baseline baseline = Baseline::parse(
        "# comment\n"
        "no-ambient-randomness src/core/seed.cc\n"
        "serve-no-throw src/serve/gone.cc  # stale\n");
    EXPECT_EQ(baseline.size(), 2u);
    EXPECT_EQ(baseline.apply(diags), 0u);
    EXPECT_TRUE(diags[0].baselined);
    ASSERT_EQ(baseline.unmatched().size(), 1u);
    EXPECT_EQ(baseline.unmatched()[0],
              "serve-no-throw src/serve/gone.cc");
}

TEST(LintBaseline, RejectsMalformedLines)
{
    EXPECT_THROW(Baseline::parse("just-a-rule-id\n"), ConfigError);
    EXPECT_THROW(Baseline::parse("rule path extra-field\n"),
                 ConfigError);
}

TEST(LintProject, ParsesSimdFlaggedSourcesFromCMake)
{
    const auto flagged = parseSimdFlaggedSources(
        "# set_source_files_properties(ghost.cc PROPERTIES\n"
        "#     COMPILE_OPTIONS \"${HARMONIA_SIMD_SOURCE_OPTIONS}\")\n"
        "add_library(x a.cc)\n"
        "set_source_files_properties(lattice_evaluator.cc PROPERTIES\n"
        "    COMPILE_OPTIONS \"${HARMONIA_SIMD_SOURCE_OPTIONS}\")\n"
        "set_source_files_properties(other.cc PROPERTIES\n"
        "    COMPILE_OPTIONS \"-O2\")\n",
        "src/sim");
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(flagged[0], "src/sim/lattice_evaluator.cc");
}

TEST(LintDiagnostic, StrAndBaselineKey)
{
    Diagnostic d;
    d.ruleId = "serve-no-throw";
    d.file = "src/serve/x.cc";
    d.line = 7;
    d.message = "m";
    d.excerpt = "throw 1;";
    d.fixHint = "h";
    EXPECT_EQ(d.baselineKey(), "serve-no-throw src/serve/x.cc");
    const std::string s = d.str();
    EXPECT_NE(s.find("src/serve/x.cc:7"), std::string::npos);
    EXPECT_NE(s.find("[serve-no-throw]"), std::string::npos);
    EXPECT_NE(s.find("fix: h"), std::string::npos);
}

TEST(LintReport, DiagnosticsSortDeterministically)
{
    const Project p =
        ProjectBuilder()
            .add("src/serve/b.cc", "void f() { throw 1; }\n")
            .add("src/serve/a.cc", "void g() { throw 2; }\n")
            .build();
    const auto diags = runRule("serve-no-throw", p);
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].file, "src/serve/a.cc");
    EXPECT_EQ(diags[1].file, "src/serve/b.cc");
}

// --- the clean-tree gate -----------------------------------------------

TEST(LintCleanTree, RepoHasZeroFindingsWithNoSuppressions)
{
    const Project project = scanProject(HARMONIA_LINT_SOURCE_ROOT);
    EXPECT_GT(project.size(), 100u);
    EXPECT_TRUE(project.hasBuildInfo());
    // The SIMD cross-check sees the three flagged TUs.
    EXPECT_TRUE(project.simdFlaggedSources().count(
        "src/sim/lattice_evaluator.cc"));
    EXPECT_TRUE(project.simdFlaggedSources().count(
        "src/memsys/memory_system.cc"));
    EXPECT_TRUE(project.simdFlaggedSources().count(
        "tests/test_simd_shim.cpp"));

    // The tree is clean without any suppression at all: every finding
    // fails the run directly.
    const auto diags =
        runLint(project, RuleRegistry::instance().all());
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << d.str();
    EXPECT_TRUE(diags.empty());
}

// The baseline burned down to zero entries in PR 10 and must never
// grow again: a new violation is fixed, not suppressed. Guarding the
// file itself (not just the findings) means sneaking an entry in
// alongside its violation still fails the analysis tier.
TEST(LintCleanTree, BaselineFileStaysEmpty)
{
    const Baseline baseline = Baseline::load(
        std::string(HARMONIA_LINT_SOURCE_ROOT) + "/lint-baseline.txt");
    EXPECT_EQ(baseline.size(), 0u)
        << "lint-baseline.txt gained suppression entries; fix the "
           "findings instead of baselining them";
}
