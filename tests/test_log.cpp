/**
 * @file
 * Unit tests for the leveled logger.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/log.hh"

using namespace harmonia;

namespace
{

class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Logger::instance().setStream(&stream_);
        Logger::instance().setLevel(LogLevel::Debug);
    }

    void TearDown() override
    {
        Logger::instance().setStream(nullptr);
        Logger::instance().setLevel(LogLevel::Warn);
    }

    std::ostringstream stream_;
};

} // namespace

TEST_F(LogTest, EmitsFormattedLine)
{
    logInfo("engine", "value=", 7);
    EXPECT_EQ(stream_.str(), "[INFO ] engine: value=7\n");
}

TEST_F(LogTest, LevelFiltersLowerSeverity)
{
    Logger::instance().setLevel(LogLevel::Error);
    logDebug("x", "hidden");
    logInfo("x", "hidden");
    logWarn("x", "hidden");
    EXPECT_TRUE(stream_.str().empty());
    logError("x", "shown");
    EXPECT_NE(stream_.str().find("shown"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything)
{
    Logger::instance().setLevel(LogLevel::Off);
    logError("x", "hidden");
    EXPECT_TRUE(stream_.str().empty());
}

TEST_F(LogTest, EnabledReflectsLevel)
{
    Logger::instance().setLevel(LogLevel::Warn);
    EXPECT_FALSE(Logger::instance().enabled(LogLevel::Debug));
    EXPECT_TRUE(Logger::instance().enabled(LogLevel::Warn));
    EXPECT_TRUE(Logger::instance().enabled(LogLevel::Error));
}

TEST(LogLevelName, AllLevelsNamed)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "DEBUG");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "INFO ");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "WARN ");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "ERROR");
}
