/**
 * @file
 * Unit tests for the dense matrix/vector helpers.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/linalg/matrix.hh"

using namespace harmonia;

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m.at(r, c), 1.5);
}

TEST(Matrix, FromRowsValidatesShape)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
    EXPECT_THROW(Matrix::fromRows({{1.0}, {1.0, 2.0}}), ConfigError);
    EXPECT_THROW(Matrix::fromRows({}), ConfigError);
}

TEST(Matrix, IdentityMultiplicationIsIdentityOp)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const Matrix i = Matrix::identity(2);
    EXPECT_DOUBLE_EQ(a.multiply(i).maxAbsDiff(a), 0.0);
    EXPECT_DOUBLE_EQ(i.multiply(a).maxAbsDiff(a), 0.0);
}

TEST(Matrix, MultiplyMatchesHandComputation)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const Matrix b = Matrix::fromRows({{5.0, 6.0}, {7.0, 8.0}});
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MultiplyVector)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const Vector y = a.multiply(Vector{1.0, 1.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, DimensionMismatchThrows)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_THROW(a.multiply(b), ConfigError);
    EXPECT_THROW(a.multiply(Vector{1.0, 2.0}), ConfigError);
}

TEST(Matrix, TransposeRoundTrips)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t.transposed().maxAbsDiff(a), 0.0);
}

TEST(Matrix, RowAndColExtraction)
{
    const Matrix a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(a.rowVec(1), (Vector{3.0, 4.0}));
    EXPECT_EQ(a.colVec(0), (Vector{1.0, 3.0}));
    EXPECT_THROW(a.rowVec(2), ConfigError);
    EXPECT_THROW(a.colVec(2), ConfigError);
}

TEST(Matrix, CheckedAccessThrowsOutOfRange)
{
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), ConfigError);
    EXPECT_THROW(m.at(0, 2), ConfigError);
}

TEST(VectorOps, DotAndNorm)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
    EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
    EXPECT_THROW(dot({1.0}, {1.0, 2.0}), ConfigError);
}

TEST(VectorOps, Axpy)
{
    const Vector y = axpy({1.0, 2.0}, 2.0, {3.0, 4.0});
    EXPECT_EQ(y, (Vector{7.0, 10.0}));
    EXPECT_THROW(axpy({1.0}, 1.0, {1.0, 2.0}), ConfigError);
}
