/**
 * @file
 * Unit tests for the aggregate memory system: peak/effective
 * bandwidth, limiter identification, and the clock-crossing cap.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/memsys/memory_system.hh"

using namespace harmonia;

namespace
{

MemorySystem
system320()
{
    return MemorySystem(hd7970(), Gddr5Model(), 320.0);
}

MemDemand
deepDemand()
{
    MemDemand d;
    d.outstandingRequests = 6000.0;
    d.streamEfficiency = 1.0;
    return d;
}

} // namespace

TEST(MemorySystem, PeakBandwidthMatchesDevice)
{
    const MemorySystem ms = system320();
    EXPECT_NEAR(ms.peakBandwidth(1375.0), 264e9, 1e9);
    EXPECT_NEAR(ms.peakBandwidth(475.0), 91.2e9, 0.5e9);
}

TEST(MemorySystem, DeepConcurrencyIsBusLimited)
{
    const MemorySystem ms = system320();
    const BandwidthResult r =
        ms.resolveBandwidth(1375.0, 1000.0, deepDemand());
    EXPECT_EQ(r.limiter, BandwidthLimiter::BusPeak);
    EXPECT_NEAR(r.effectiveBps, 264e9, 2e9);
}

TEST(MemorySystem, LowComputeClockIsCrossingLimited)
{
    // Figure 9: at 300 MHz the 320 B/cycle crossing caps off-chip
    // bandwidth at 96 GB/s even with 264 GB/s of bus.
    const MemorySystem ms = system320();
    const BandwidthResult r =
        ms.resolveBandwidth(1375.0, 300.0, deepDemand());
    EXPECT_EQ(r.limiter, BandwidthLimiter::Crossing);
    EXPECT_NEAR(r.effectiveBps, 96e9, 1e9);
}

TEST(MemorySystem, ShallowConcurrencyIsMlpLimited)
{
    const MemorySystem ms = system320();
    MemDemand d = deepDemand();
    d.outstandingRequests = 100.0;
    const BandwidthResult r = ms.resolveBandwidth(1375.0, 1000.0, d);
    EXPECT_EQ(r.limiter, BandwidthLimiter::Concurrency);
    // Little's law: ~100 * 64B / latency.
    EXPECT_NEAR(r.effectiveBps, 100.0 * 64.0 / r.latency,
                0.02 * r.effectiveBps);
    EXPECT_LT(r.effectiveBps, 100e9);
}

TEST(MemorySystem, ZeroDemandYieldsZeroBandwidth)
{
    const MemorySystem ms = system320();
    MemDemand d;
    d.outstandingRequests = 0.0;
    const BandwidthResult r = ms.resolveBandwidth(925.0, 700.0, d);
    EXPECT_DOUBLE_EQ(r.effectiveBps, 0.0);
    EXPECT_GT(r.latency, 0.0);
}

TEST(MemorySystem, StreamEfficiencyCapsBelowPeak)
{
    const MemorySystem ms = system320();
    MemDemand d = deepDemand();
    d.streamEfficiency = 0.5;
    const BandwidthResult r = ms.resolveBandwidth(1375.0, 1000.0, d);
    EXPECT_NEAR(r.effectiveBps, 132e9, 2e9);
}

TEST(MemorySystem, EffectiveBandwidthMonotoneInMemFrequency)
{
    const MemorySystem ms = system320();
    double prev = 0.0;
    for (int f = 475; f <= 1375; f += 150) {
        const BandwidthResult r =
            ms.resolveBandwidth(f, 1000.0, deepDemand());
        EXPECT_GE(r.effectiveBps, prev);
        prev = r.effectiveBps;
    }
}

TEST(MemorySystem, EffectiveBandwidthMonotoneInComputeFrequency)
{
    const MemorySystem ms = system320();
    double prev = 0.0;
    for (int f = 300; f <= 1000; f += 100) {
        const BandwidthResult r =
            ms.resolveBandwidth(1375.0, f, deepDemand());
        EXPECT_GE(r.effectiveBps, prev - 1.0);
        prev = r.effectiveBps;
    }
}

TEST(MemorySystem, PowerDelegatesToGddr5)
{
    const MemorySystem ms = system320();
    const MemPowerBreakdown p = ms.power(925.0, 100e9, 0.7);
    EXPECT_GT(p.total(), 0.0);
    EXPECT_GT(p.readWrite, 0.0);
}

TEST(MemorySystem, RejectsInvalidDemand)
{
    const MemorySystem ms = system320();
    MemDemand d = deepDemand();
    d.streamEfficiency = 0.0;
    EXPECT_THROW(ms.resolveBandwidth(925.0, 700.0, d), ConfigError);
    d = deepDemand();
    d.outstandingRequests = -1.0;
    EXPECT_THROW(ms.resolveBandwidth(925.0, 700.0, d), ConfigError);
    d = deepDemand();
    d.requestBytes = 0.0;
    EXPECT_THROW(ms.resolveBandwidth(925.0, 700.0, d), ConfigError);
    EXPECT_THROW(ms.peakBandwidth(-1.0), ConfigError);
}

TEST(BandwidthLimiterName, AllNamed)
{
    EXPECT_STREQ(bandwidthLimiterName(BandwidthLimiter::BusPeak),
                 "bus-peak");
    EXPECT_STREQ(bandwidthLimiterName(BandwidthLimiter::Crossing),
                 "clock-crossing");
    EXPECT_STREQ(bandwidthLimiterName(BandwidthLimiter::Concurrency),
                 "concurrency");
}
