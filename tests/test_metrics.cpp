/**
 * @file
 * Tests for the energy-efficiency metric helpers.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "metrics/energy_metrics.hh"

using namespace harmonia;

TEST(RunMetrics, Definitions)
{
    RunMetrics m;
    m.timeSec = 2.0;
    m.energyJoules = 10.0;
    EXPECT_DOUBLE_EQ(m.ed(), 20.0);
    EXPECT_DOUBLE_EQ(m.ed2(), 40.0);
    EXPECT_DOUBLE_EQ(m.power(), 5.0);
    EXPECT_DOUBLE_EQ(RunMetrics{}.power(), 0.0);
}

TEST(Improvement, FractionOfBaseline)
{
    EXPECT_NEAR(improvementOver(100.0, 88.0), 0.12, 1e-12);
    EXPECT_DOUBLE_EQ(improvementOver(100.0, 100.0), 0.0);
    EXPECT_NEAR(improvementOver(100.0, 110.0), -0.1, 1e-12);
    EXPECT_THROW(improvementOver(0.0, 1.0), ConfigError);
}

TEST(Speedup, PositiveMeansFaster)
{
    EXPECT_DOUBLE_EQ(speedupOver(2.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(speedupOver(1.0, 2.0), -0.5);
    EXPECT_THROW(speedupOver(1.0, 0.0), ConfigError);
    EXPECT_THROW(speedupOver(0.0, 1.0), ConfigError);
}

TEST(GeomeanImprovement, MatchesGeomeanOfRatios)
{
    // Ratios 0.5 and 2.0 -> geomean 1.0 -> improvement 0.
    EXPECT_NEAR(geomeanImprovement({10.0, 10.0}, {5.0, 20.0}), 0.0,
                1e-12);
    // Uniform 20% improvement.
    EXPECT_NEAR(geomeanImprovement({10.0, 5.0}, {8.0, 4.0}), 0.2,
                1e-12);
}

TEST(GeomeanImprovement, Validation)
{
    EXPECT_THROW(geomeanImprovement({1.0}, {1.0, 2.0}), ConfigError);
    EXPECT_THROW(geomeanImprovement({0.0}, {1.0}), ConfigError);
}
