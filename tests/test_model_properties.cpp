/**
 * @file
 * Global model invariants, swept across the full configuration
 * lattice for every kernel in the suite (~450 configs x 30+ kernels).
 * These are the guarantees the governors rely on implicitly: valid
 * counters everywhere, physically sane power, consistent energy
 * accounting, and the documented monotonicities.
 */

#include <gtest/gtest.h>

#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

std::vector<KernelProfile>
allKernels()
{
    std::vector<KernelProfile> out;
    for (const auto &app : standardSuite())
        for (const auto &k : app.kernels)
            out.push_back(k);
    return out;
}

} // namespace

/** One parameterized instance per application. */
class FullLatticeSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FullLatticeSweep, InvariantsHoldAtEveryConfiguration)
{
    const Application app = appByName(GetParam());
    for (const auto &kernel : app.kernels) {
        for (const auto &cfg : device().space().allConfigs()) {
            const KernelResult r = device().run(kernel, 0, cfg);
            // Time and energy are positive and consistent.
            ASSERT_GT(r.time(), 0.0) << kernel.id() << cfg.str();
            ASSERT_GT(r.cardEnergy, 0.0);
            ASSERT_NEAR(r.cardEnergy, r.power.total() * r.time(),
                        1e-6 * r.cardEnergy);
            // Counters validate everywhere.
            ASSERT_NO_THROW(r.timing.counters.validate())
                << kernel.id() << " @ " << cfg.str();
            // Power stays within the physical envelope of the card.
            ASSERT_GT(r.power.total(), 5.0);
            ASSERT_LT(r.power.total(), 300.0);
            // Effective bandwidth never exceeds the bus peak.
            ASSERT_LE(r.timing.bandwidth.effectiveBps,
                      device().config().peakMemBandwidth(
                          cfg.memFreqMhz) *
                          (1.0 + 1e-9));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, FullLatticeSweep,
    ::testing::Values("CoMD", "XSBench", "miniFE", "Graph500", "BPT",
                      "CFD", "LUD", "SRAD", "Streamcluster", "Stencil",
                      "Sort", "SPMV", "MaxFlops", "DeviceMemory"));

TEST(ModelProperties, PowerMonotoneInComputeFrequency)
{
    // At fixed CU count and memory frequency, raising the compute
    // clock (and its fused voltage) never lowers card power.
    for (const auto &kernel : allKernels()) {
        double prev = 0.0;
        for (int f :
             device().space().values(Tunable::ComputeFreq)) {
            const double p =
                device().run(kernel, 0, {32, f, 1375}).power.total();
            ASSERT_GE(p, prev - 1e-9) << kernel.id() << " @ " << f;
            prev = p;
        }
    }
}

TEST(ModelProperties, PowerMonotoneInCuCount)
{
    for (const auto &kernel : allKernels()) {
        double prev = 0.0;
        for (int cu : device().space().values(Tunable::CuCount)) {
            const double p =
                device().run(kernel, 0, {cu, 1000, 1375}).power.total();
            ASSERT_GE(p, prev - 1e-9) << kernel.id() << " @ " << cu;
            prev = p;
        }
    }
}

TEST(ModelProperties, EnergyPerWorkBoundedAcrossLattice)
{
    // Energy per wave-instruction stays within two orders of
    // magnitude across the lattice for any kernel — no configuration
    // produces absurd energy accounting.
    for (const auto &kernel : allKernels()) {
        double lo = 1e300;
        double hi = 0.0;
        for (const auto &cfg : device().space().allConfigs()) {
            const KernelResult r = device().run(kernel, 0, cfg);
            const double work =
                std::max(1.0, r.timing.counters.valuInsts +
                                  r.timing.counters.vfetchInsts);
            const double epw = r.cardEnergy / work;
            lo = std::min(lo, epw);
            hi = std::max(hi, epw);
        }
        ASSERT_LT(hi / lo, 100.0) << kernel.id();
    }
}

TEST(ModelProperties, ExecTimeDecreasesFromMinToMaxConfig)
{
    for (const auto &kernel : allKernels()) {
        const double tMin =
            device()
                .run(kernel, 0, device().space().minConfig())
                .time();
        const double tMax =
            device()
                .run(kernel, 0, device().space().maxConfig())
                .time();
        ASSERT_LE(tMax, tMin * (1.0 + 1e-9)) << kernel.id();
    }
}

TEST(ModelProperties, OccupancyIndependentOfConfiguration)
{
    // Occupancy is a static property of the kernel's resources.
    for (const auto &kernel : allKernels()) {
        const auto occA =
            device().run(kernel, 0, {4, 300, 475}).timing.occupancy;
        const auto occB =
            device().run(kernel, 0, {32, 1000, 1375}).timing.occupancy;
        ASSERT_EQ(occA.wavesPerSimd, occB.wavesPerSimd) << kernel.id();
        ASSERT_EQ(occA.limiter, occB.limiter) << kernel.id();
    }
}
