/**
 * @file
 * Unit and property tests for the occupancy calculator, including the
 * paper's Sort.BottomScan example (66 VGPRs -> 30% occupancy).
 */

#include <gtest/gtest.h>

#include "harmonia/arch/occupancy.hh"
#include "harmonia/common/error.hh"

using namespace harmonia;

namespace
{

KernelResources
baseResources()
{
    KernelResources r;
    r.vgprPerWorkitem = 24;
    r.sgprPerWave = 24;
    r.ldsPerWorkgroupBytes = 0;
    r.workgroupSize = 256;
    return r;
}

} // namespace

TEST(Occupancy, FullOccupancyWithLightResources)
{
    const OccupancyInfo occ = computeOccupancy(hd7970(), baseResources());
    EXPECT_EQ(occ.wavesPerSimd, 10);
    EXPECT_EQ(occ.wavesPerCu, 40);
    EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::WaveSlots);
}

TEST(Occupancy, PaperBottomScanVgprExample)
{
    // Section 3.5: 66 VGPRs > 25% of 256, so only 3 waves/SIMD
    // (12 per CU) instead of 10 -> 30% occupancy.
    KernelResources r = baseResources();
    r.vgprPerWorkitem = 66;
    const OccupancyInfo occ = computeOccupancy(hd7970(), r);
    EXPECT_EQ(occ.wavesPerSimd, 3);
    EXPECT_EQ(occ.wavesPerCu, 12);
    EXPECT_DOUBLE_EQ(occ.occupancy, 0.3);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Vgpr);
}

TEST(Occupancy, SgprLimit)
{
    KernelResources r = baseResources();
    r.sgprPerWave = 100; // 512/100 = 5 waves/SIMD
    const OccupancyInfo occ = computeOccupancy(hd7970(), r);
    EXPECT_EQ(occ.wavesPerSimd, 5);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Sgpr);
}

TEST(Occupancy, LdsLimit)
{
    KernelResources r = baseResources();
    r.ldsPerWorkgroupBytes = 32 * 1024; // 2 workgroups x 4 waves = 8
    const OccupancyInfo occ = computeOccupancy(hd7970(), r);
    EXPECT_EQ(occ.workgroupsPerCu, 2);
    EXPECT_EQ(occ.wavesPerCu, 8);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Lds);
}

TEST(Occupancy, WorkgroupRounding)
{
    KernelResources r = baseResources();
    r.vgprPerWorkitem = 86; // floor(256/86)=2 waves/SIMD -> 8 per CU
    r.workgroupSize = 192;  // 3 waves per workgroup -> 2 wg = 6 waves
    const OccupancyInfo occ = computeOccupancy(hd7970(), r);
    EXPECT_EQ(occ.workgroupsPerCu, 2);
    EXPECT_EQ(occ.wavesPerCu, 6);
}

TEST(Occupancy, ValidationRejectsOversizedDemands)
{
    KernelResources r = baseResources();
    r.vgprPerWorkitem = 300;
    EXPECT_THROW(computeOccupancy(hd7970(), r), ConfigError);
    r = baseResources();
    r.sgprPerWave = 200;
    EXPECT_THROW(computeOccupancy(hd7970(), r), ConfigError);
    r = baseResources();
    r.ldsPerWorkgroupBytes = 128 * 1024;
    EXPECT_THROW(computeOccupancy(hd7970(), r), ConfigError);
    r = baseResources();
    r.workgroupSize = 0;
    EXPECT_THROW(computeOccupancy(hd7970(), r), ConfigError);
}

TEST(OccupancyLimiterName, AllNamed)
{
    EXPECT_STREQ(occupancyLimiterName(OccupancyLimiter::WaveSlots),
                 "wave-slots");
    EXPECT_STREQ(occupancyLimiterName(OccupancyLimiter::Vgpr), "VGPR");
    EXPECT_STREQ(occupancyLimiterName(OccupancyLimiter::Sgpr), "SGPR");
    EXPECT_STREQ(occupancyLimiterName(OccupancyLimiter::Lds), "LDS");
    EXPECT_STREQ(occupancyLimiterName(OccupancyLimiter::Workgroup),
                 "workgroup");
}

/** Property: occupancy is in (0, 1] and monotone non-increasing as
 * VGPR demand grows. */
class OccupancyVgprSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(OccupancyVgprSweep, BoundedAndConsistent)
{
    KernelResources r = baseResources();
    r.vgprPerWorkitem = GetParam();
    const OccupancyInfo occ = computeOccupancy(hd7970(), r);
    EXPECT_GT(occ.occupancy, 0.0);
    EXPECT_LE(occ.occupancy, 1.0);
    EXPECT_EQ(occ.wavesPerSimd, 256 / GetParam() > 10
                                    ? 10
                                    : 256 / GetParam());

    if (GetParam() + 8 <= 256) {
        KernelResources heavier = r;
        heavier.vgprPerWorkitem = GetParam() + 8;
        const OccupancyInfo occ2 = computeOccupancy(hd7970(), heavier);
        EXPECT_LE(occ2.occupancy, occ.occupancy);
    }
}

INSTANTIATE_TEST_SUITE_P(VgprValues, OccupancyVgprSweep,
                         ::testing::Values(8, 16, 25, 26, 32, 48, 64,
                                           66, 85, 86, 128, 200, 256));
