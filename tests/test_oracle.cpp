/**
 * @file
 * Tests for the exhaustive-search oracle governor.
 */

#include <gtest/gtest.h>

#include "harmonia/core/oracle.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

} // namespace

TEST(Oracle, BestConfigBeatsEveryOtherConfig)
{
    const KernelProfile k = appByName("CFD").kernel("ComputeFlux");
    const HardwareConfig best =
        bestConfigFor(device(), k, 0, OracleObjective::MinEd2);
    const double bestEd2 = device().run(k, 0, best).ed2();
    for (const auto &cfg : device().space().allConfigs()) {
        EXPECT_LE(bestEd2,
                  device().run(k, 0, cfg).ed2() * (1.0 + 1e-9));
    }
}

TEST(Oracle, ObjectivesOrderAsExpected)
{
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const HardwareConfig perfCfg =
        bestConfigFor(device(), k, 0, OracleObjective::MaxPerf);
    const HardwareConfig energyCfg =
        bestConfigFor(device(), k, 0, OracleObjective::MinEnergy);
    const HardwareConfig ed2Cfg =
        bestConfigFor(device(), k, 0, OracleObjective::MinEd2);

    const KernelResult perfRun = device().run(k, 0, perfCfg);
    const KernelResult energyRun = device().run(k, 0, energyCfg);
    const KernelResult ed2Run = device().run(k, 0, ed2Cfg);

    EXPECT_LE(perfRun.time(), energyRun.time());
    EXPECT_LE(perfRun.time(), ed2Run.time() * (1.0 + 1e-9));
    EXPECT_LE(energyRun.cardEnergy, perfRun.cardEnergy);
    EXPECT_LE(energyRun.cardEnergy,
              ed2Run.cardEnergy * (1.0 + 1e-9));
    EXPECT_LE(ed2Run.ed2(), perfRun.ed2() * (1.0 + 1e-9));
    EXPECT_LE(ed2Run.ed2(), energyRun.ed2() * (1.0 + 1e-9));
}

TEST(Oracle, MaxPerfTieBreaksTowardTheBigConfig)
{
    // For a compute-bound kernel every memory configuration ties on
    // performance; the naive performance-first policy keeps max.
    const KernelProfile k = makeMaxFlops().kernels.front();
    const HardwareConfig cfg =
        bestConfigFor(device(), k, 0, OracleObjective::MaxPerf);
    EXPECT_EQ(cfg, device().space().maxConfig());
}

TEST(Oracle, GovernorCachesPerIterationSearches)
{
    OracleGovernor governor(device());
    const KernelProfile k = makeComd().kernels.front();
    const HardwareConfig a = governor.decide(k, 0);
    EXPECT_EQ(governor.searches(), 1u);
    const HardwareConfig b = governor.decide(k, 0);
    EXPECT_EQ(governor.searches(), 1u);
    EXPECT_EQ(a, b);
    governor.decide(k, 1);
    EXPECT_EQ(governor.searches(), 2u);
    governor.reset();
    governor.decide(k, 0);
    EXPECT_EQ(governor.searches(), 3u);
}

TEST(Oracle, NameIncludesObjective)
{
    EXPECT_EQ(OracleGovernor(device()).name(), "Oracle(min-ED2)");
    EXPECT_EQ(
        OracleGovernor(device(), OracleObjective::MinEnergy).name(),
        "Oracle(min-energy)");
}

TEST(Oracle, ObjectiveNames)
{
    EXPECT_STREQ(oracleObjectiveName(OracleObjective::MinEd2),
                 "min-ED2");
    EXPECT_STREQ(oracleObjectiveName(OracleObjective::MinEnergy),
                 "min-energy");
    EXPECT_STREQ(oracleObjectiveName(OracleObjective::MaxPerf),
                 "max-performance");
    EXPECT_STREQ(oracleObjectiveName(OracleObjective::MinEd), "min-ED");
}
