/**
 * @file
 * Unit tests for the Table 2 counter set and derived metrics.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/counters/perf_counters.hh"

using namespace harmonia;

namespace
{

CounterSet
sample()
{
    CounterSet c;
    c.valuBusy = 80.0;
    c.valuUtilization = 90.0;
    c.memUnitBusy = 40.0;
    c.memUnitStalled = 10.0;
    c.writeUnitStalled = 5.0;
    c.l2CacheHit = 50.0;
    c.icActivity = 0.6;
    c.normVgpr = 0.25;
    c.normSgpr = 0.3;
    c.valuInsts = 1e6;
    c.vfetchInsts = 2e5;
    c.vwriteInsts = 1e5;
    c.offChipBytes = 1e8;
    return c;
}

} // namespace

TEST(CounterSet, CtoMIsBoundedShare)
{
    CounterSet c = sample();
    // aluShare = 80*90/100 = 72; share = 72/(72+40)*100.
    EXPECT_NEAR(c.computeToMemIntensity(), 100.0 * 72.0 / 112.0, 1e-9);

    c.memUnitBusy = 0.0;
    c.valuBusy = 100.0;
    c.valuUtilization = 100.0;
    EXPECT_NEAR(c.computeToMemIntensity(), 100.0, 1e-9);

    c.valuBusy = 0.0;
    EXPECT_DOUBLE_EQ(c.computeToMemIntensity(), 0.0);
}

TEST(CounterSet, CtoMMonotoneInAluShare)
{
    CounterSet c = sample();
    const double base = c.computeToMemIntensity();
    c.valuBusy = 95.0;
    EXPECT_GT(c.computeToMemIntensity(), base);
}

TEST(CounterSet, BandwidthFeatureOrderMatchesTable3)
{
    const CounterSet c = sample();
    const auto f = c.bandwidthFeatures();
    ASSERT_EQ(f.size(), bandwidthFeatureNames().size());
    EXPECT_DOUBLE_EQ(f[0], c.valuUtilization);
    EXPECT_DOUBLE_EQ(f[1], c.writeUnitStalled);
    EXPECT_DOUBLE_EQ(f[2], c.memUnitBusy);
    EXPECT_DOUBLE_EQ(f[3], c.memUnitStalled);
    EXPECT_DOUBLE_EQ(f[4], c.icActivity);
    EXPECT_DOUBLE_EQ(f[5], c.normVgpr);
    EXPECT_DOUBLE_EQ(f[6], c.normSgpr);
}

TEST(CounterSet, ComputeFeatureOrder)
{
    const CounterSet c = sample();
    const auto f = c.computeFeatures();
    ASSERT_EQ(f.size(), computeFeatureNames().size());
    EXPECT_DOUBLE_EQ(f[0], c.computeToMemIntensity());
    EXPECT_DOUBLE_EQ(f[1], c.normVgpr);
    EXPECT_DOUBLE_EQ(f[2], c.normSgpr);
    EXPECT_DOUBLE_EQ(f[3], c.valuBusy);
    EXPECT_DOUBLE_EQ(f[4], c.icActivity);
}

TEST(CounterSet, ValidateAcceptsSaneValues)
{
    EXPECT_NO_THROW(sample().validate());
}

TEST(CounterSet, ValidateRejectsOutOfRange)
{
    CounterSet c = sample();
    c.valuBusy = 101.0;
    EXPECT_THROW(c.validate(), InternalError);
    c = sample();
    c.icActivity = 1.5;
    EXPECT_THROW(c.validate(), InternalError);
    c = sample();
    c.normVgpr = -0.1;
    EXPECT_THROW(c.validate(), InternalError);
    c = sample();
    c.valuInsts = -1.0;
    EXPECT_THROW(c.validate(), InternalError);
}

TEST(IcActivity, RatioOfAchievedToPeak)
{
    // Equations (1)-(2).
    EXPECT_DOUBLE_EQ(icActivityOf(132e9, 264e9), 0.5);
    EXPECT_DOUBLE_EQ(icActivityOf(300e9, 264e9), 1.0); // capped
    EXPECT_DOUBLE_EQ(icActivityOf(0.0, 264e9), 0.0);
    EXPECT_THROW(icActivityOf(1.0, 0.0), ConfigError);
    EXPECT_THROW(icActivityOf(-1.0, 264e9), ConfigError);
}

TEST(AverageCounters, ElementWiseMean)
{
    CounterSet a = sample();
    CounterSet b = sample();
    b.valuBusy = 40.0;
    b.icActivity = 0.2;
    b.valuInsts = 3e6;
    const CounterSet avg = averageCounters({a, b});
    EXPECT_DOUBLE_EQ(avg.valuBusy, 60.0);
    EXPECT_DOUBLE_EQ(avg.icActivity, 0.4);
    EXPECT_DOUBLE_EQ(avg.valuInsts, 2e6);
    EXPECT_DOUBLE_EQ(avg.memUnitBusy, a.memUnitBusy);
}

TEST(AverageCounters, RejectsEmpty)
{
    EXPECT_THROW(averageCounters({}), ConfigError);
}

TEST(FeatureNames, StableAndDistinct)
{
    const auto &bw = bandwidthFeatureNames();
    EXPECT_EQ(bw.size(), 7u);
    EXPECT_EQ(bw[4], "icActivity");
    const auto &comp = computeFeatureNames();
    EXPECT_EQ(comp.size(), 5u);
    EXPECT_EQ(comp[0], "C-to-M Intensity");
}
