/**
 * @file
 * Tests for the TDP-envelope enforcement decorator.
 */

#include <memory>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/baseline_governor.hh"
#include "core/power_cap.hh"
#include "harmonia/core/runtime.hh"
#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

PowerCapGovernor
cappedBaseline(double capWatts)
{
    return PowerCapGovernor(
        device().space(),
        std::make_unique<BaselineGovernor>(device().space()),
        capWatts);
}

} // namespace

TEST(PowerCap, GenerousCapChangesNothing)
{
    PowerCapGovernor governor = cappedBaseline(400.0);
    const AppRunResult run =
        Runtime(device()).run(makeComd(), governor);
    EXPECT_EQ(governor.deratingSteps(), 0);
    for (const auto &t : run.trace)
        EXPECT_EQ(t.config, device().space().maxConfig());
}

TEST(PowerCap, TightCapIsEnforced)
{
    const double cap = 140.0;
    PowerCapGovernor governor = cappedBaseline(cap);
    const AppRunResult run =
        Runtime(device()).run(makeMaxFlops(), governor);
    // The tail of the run must respect the budget (the first
    // iterations are spent detecting the overage).
    const auto &last = run.trace.back();
    EXPECT_LT(last.result.power.total(), cap * 1.1);
    EXPECT_GT(governor.deratingSteps(), 0);
}

TEST(PowerCap, DeratesFrequencyBeforeCuCount)
{
    PowerCapGovernor governor = cappedBaseline(150.0);
    Runtime(device()).run(makeMaxFlops(), governor);
    const Application mfApp = makeMaxFlops();
    const KernelProfile &k = mfApp.kernels.front();
    const HardwareConfig cfg = governor.decide(k, 99);
    if (governor.deratingSteps() <= 7) {
        EXPECT_EQ(cfg.cuCount, 32);
        EXPECT_LT(cfg.computeFreqMhz, 1000);
    } else {
        EXPECT_EQ(cfg.computeFreqMhz, 300);
        EXPECT_LT(cfg.cuCount, 32);
    }
}

TEST(PowerCap, RelaxesWhenHeadroomReturns)
{
    PowerCapGovernor governor = cappedBaseline(160.0);
    Runtime runtime(device());
    runtime.run(makeMaxFlops(), governor); // forces derating
    // Note: Runtime::run resets the governor first, so drive samples
    // manually to test relaxation.
    const Application mfApp = makeMaxFlops();
    const KernelProfile &k = mfApp.kernels.front();
    governor.reset();
    // Push it over budget.
    for (int i = 0; i < 5; ++i) {
        KernelSample s;
        s.kernelId = k.id();
        s.config = governor.decide(k, i);
        s.execTime = 1e-3;
        s.cardEnergy = 0.220; // 220 W
        governor.observe(s);
    }
    const int derated = governor.deratingSteps();
    EXPECT_GT(derated, 0);
    // Now feed it cool samples.
    for (int i = 0; i < 10; ++i) {
        KernelSample s;
        s.kernelId = k.id();
        s.config = governor.decide(k, i);
        s.execTime = 1e-3;
        s.cardEnergy = 0.080; // 80 W
        governor.observe(s);
    }
    EXPECT_LT(governor.deratingSteps(), derated);
}

TEST(PowerCap, NameAndValidation)
{
    EXPECT_EQ(cappedBaseline(200.0).name(), "Baseline+cap");
    EXPECT_THROW(cappedBaseline(0.0), ConfigError);
    EXPECT_THROW(PowerCapGovernor(device().space(), nullptr, 100.0),
                 ConfigError);
}

TEST(PowerCap, ResetClearsDerating)
{
    PowerCapGovernor governor = cappedBaseline(120.0);
    Runtime(device()).run(makeMaxFlops(), governor);
    governor.reset();
    EXPECT_EQ(governor.deratingSteps(), 0);
    EXPECT_DOUBLE_EQ(governor.averagePower(), 0.0);
}
