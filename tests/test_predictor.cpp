/**
 * @file
 * Tests for the linear sensitivity predictors (paper Table 3).
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/predictor.hh"

using namespace harmonia;

TEST(LinearModel, EvaluateIsAffineAndClamped)
{
    LinearSensitivityModel m;
    m.intercept = 0.1;
    m.coeffs = {0.5, -0.2};
    EXPECT_NEAR(m.evaluate({1.0, 1.0}), 0.4, 1e-12);
    EXPECT_DOUBLE_EQ(m.evaluate({10.0, 0.0}), 1.0);  // clamped high
    EXPECT_DOUBLE_EQ(m.evaluate({0.0, 10.0}), 0.0);  // clamped low
}

TEST(LinearModel, RejectsWrongFeatureCount)
{
    LinearSensitivityModel m;
    m.coeffs = {1.0, 2.0};
    EXPECT_THROW(m.evaluate({1.0}), ConfigError);
}

TEST(Predictor, PaperTable3Coefficients)
{
    const SensitivityPredictor p = SensitivityPredictor::paperTable3();
    const LinearSensitivityModel &bw = p.bandwidthModel();
    EXPECT_DOUBLE_EQ(bw.intercept, -0.42);
    ASSERT_EQ(bw.coeffs.size(), 7u);
    EXPECT_DOUBLE_EQ(bw.coeffs[0], 0.003);  // VALUUtilization
    EXPECT_DOUBLE_EQ(bw.coeffs[1], 0.011);  // WriteUnitStalled
    EXPECT_DOUBLE_EQ(bw.coeffs[2], 0.01);   // MemUnitBusy
    EXPECT_DOUBLE_EQ(bw.coeffs[3], -0.004); // MemUnitStalled
    EXPECT_DOUBLE_EQ(bw.coeffs[4], 1.003);  // icActivity
    EXPECT_DOUBLE_EQ(bw.coeffs[5], 1.158);  // NormVGPR
    EXPECT_DOUBLE_EQ(bw.coeffs[6], -0.731); // NormSGPR

    const LinearSensitivityModel &comp = p.computeModel();
    EXPECT_DOUBLE_EQ(comp.intercept, 0.06);
    ASSERT_EQ(comp.coeffs.size(), 5u);
    EXPECT_DOUBLE_EQ(comp.coeffs[0], 0.007); // C-to-M Intensity
    EXPECT_DOUBLE_EQ(comp.coeffs[1], 0.452); // NormVGPR
    EXPECT_DOUBLE_EQ(comp.coeffs[2], 0.024); // NormSGPR
    EXPECT_DOUBLE_EQ(comp.coeffs[3], 0.0);   // VALUBusy (extension)
    EXPECT_DOUBLE_EQ(comp.coeffs[4], 0.0);   // icActivity (extension)
}

TEST(Predictor, PaperModelSeparatesExtremes)
{
    const SensitivityPredictor p = SensitivityPredictor::paperTable3();

    CounterSet memBound;
    memBound.valuBusy = 10.0;
    memBound.valuUtilization = 100.0;
    memBound.memUnitBusy = 95.0;
    memBound.memUnitStalled = 40.0;
    memBound.icActivity = 0.9;
    memBound.normVgpr = 0.1;
    memBound.normSgpr = 0.2;

    CounterSet computeBound;
    computeBound.valuBusy = 98.0;
    computeBound.valuUtilization = 100.0;
    computeBound.memUnitBusy = 2.0;
    computeBound.icActivity = 0.01;
    computeBound.normVgpr = 0.1;
    computeBound.normSgpr = 0.2;

    EXPECT_GT(p.predictBandwidth(memBound),
              p.predictBandwidth(computeBound));
    EXPECT_GT(p.predictCompute(computeBound),
              p.predictCompute(memBound));
}

TEST(Predictor, PredictionsAreInUnitRange)
{
    const SensitivityPredictor p = SensitivityPredictor::paperTable3();
    CounterSet extreme;
    extreme.valuBusy = 100.0;
    extreme.valuUtilization = 100.0;
    extreme.memUnitBusy = 100.0;
    extreme.memUnitStalled = 100.0;
    extreme.writeUnitStalled = 100.0;
    extreme.icActivity = 1.0;
    extreme.normVgpr = 1.0;
    extreme.normSgpr = 1.0;
    for (const CounterSet &c : {CounterSet{}, extreme}) {
        const double bw = p.predictBandwidth(c);
        const double comp = p.predictCompute(c);
        EXPECT_GE(bw, 0.0);
        EXPECT_LE(bw, 1.0);
        EXPECT_GE(comp, 0.0);
        EXPECT_LE(comp, 1.0);
    }
}

TEST(Predictor, PredictBinsUsesBothModels)
{
    const SensitivityPredictor p = SensitivityPredictor::paperTable3();
    CounterSet c;
    c.icActivity = 0.95;
    c.memUnitBusy = 95.0;
    c.normVgpr = 0.2;
    const SensitivityBins bins = p.predictBins(c);
    EXPECT_EQ(bins.bandwidth, SensitivityBin::High);
    EXPECT_EQ(bins.compute, SensitivityBin::Low);
}

TEST(Predictor, ConstructorValidatesCoefficientCounts)
{
    LinearSensitivityModel bw;
    bw.coeffs = {1.0}; // wrong size
    LinearSensitivityModel comp;
    comp.coeffs = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_THROW(SensitivityPredictor(bw, comp), ConfigError);

    bw.coeffs = {1, 2, 3, 4, 5, 6, 7};
    comp.coeffs = {1.0};
    EXPECT_THROW(SensitivityPredictor(bw, comp), ConfigError);
}
