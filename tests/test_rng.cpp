/**
 * @file
 * Unit and property tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/common/rng.hh"

using namespace harmonia;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 12);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformRejectsInvertedBounds)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniform(2.0, 1.0), ConfigError);
    EXPECT_THROW(rng.uniformInt(5, 4), ConfigError);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.uniformInt(0, 7);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 7);
        sawLo = sawLo || v == 0;
        sawHi = sawHi || v == 7;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScalesMeanAndStddev)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, LogNormalMedianIsApproximatelyRight)
{
    Rng rng(29);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.logNormal(4.0, 0.5));
    std::sort(samples.begin(), samples.end());
    EXPECT_NEAR(samples[samples.size() / 2], 4.0, 0.15);
    for (double s : samples)
        EXPECT_GT(s, 0.0);
}

TEST(Rng, LogNormalRejectsNonPositiveMedian)
{
    Rng rng(1);
    EXPECT_THROW(rng.logNormal(0.0, 1.0), ConfigError);
}

/** Property sweep: determinism holds for many seeds. */
class RngSeedTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngSeedTest, Reproducible)
{
    Rng a(GetParam());
    Rng b(GetParam());
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST_P(RngSeedTest, UniformStaysInRange)
{
    Rng rng(GetParam());
    for (int i = 0; i < 256; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull,
                                           987654321ull));
