/**
 * @file
 * Tests for the application runtime (the measurement loop).
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "harmonia/core/baseline_governor.hh"
#include "harmonia/common/error.hh"
#include "harmonia/core/runtime.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

} // namespace

TEST(Runtime, TraceCoversEveryInvocation)
{
    const Application app = makeComd(); // 3 kernels x 10 iterations
    BaselineGovernor governor(device().space());
    const AppRunResult run = Runtime(device()).run(app, governor);
    EXPECT_EQ(run.trace.size(), 30u);
    EXPECT_EQ(run.appName, "CoMD");
    EXPECT_EQ(run.governorName, "Baseline");
    // Trace order: kernels in order within each iteration.
    EXPECT_EQ(run.trace[0].kernelId, "CoMD.EAM_Force_1");
    EXPECT_EQ(run.trace[1].kernelId, "CoMD.AdvanceVelocity");
    EXPECT_EQ(run.trace[3].iteration, 1);
}

TEST(Runtime, TotalsMatchTraceSums)
{
    const Application app = makeSort();
    BaselineGovernor governor(device().space());
    const AppRunResult run = Runtime(device()).run(app, governor);
    double time = 0.0;
    double energy = 0.0;
    for (const auto &t : run.trace) {
        time += t.result.time();
        energy += t.result.cardEnergy;
    }
    EXPECT_NEAR(run.totalTime, time, 1e-12);
    EXPECT_NEAR(run.cardEnergy, energy, 1e-12);
    EXPECT_GT(run.gpuEnergy, 0.0);
    EXPECT_GT(run.memEnergy, 0.0);
    EXPECT_LT(run.gpuEnergy + run.memEnergy, run.cardEnergy);
}

TEST(Runtime, ResidencyTotalsEqualRunTime)
{
    const Application app = makeStencil();
    BaselineGovernor governor(device().space());
    const AppRunResult run = Runtime(device()).run(app, governor);
    for (Tunable t : kAllTunables)
        EXPECT_NEAR(run.residency(t).total(), run.totalTime, 1e-12);
    // Baseline never leaves the max configuration.
    EXPECT_DOUBLE_EQ(run.cuResidency.fraction(32.0), 1.0);
    EXPECT_DOUBLE_EQ(run.freqResidency.fraction(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(run.memResidency.fraction(1375.0), 1.0);
}

TEST(Runtime, MetricDefinitions)
{
    const Application app = makeMaxFlops();
    BaselineGovernor governor(device().space());
    const AppRunResult run = Runtime(device()).run(app, governor);
    EXPECT_DOUBLE_EQ(run.ed(), run.cardEnergy * run.totalTime);
    EXPECT_DOUBLE_EQ(run.ed2(),
                     run.cardEnergy * run.totalTime * run.totalTime);
    EXPECT_NEAR(run.averagePower(), run.cardEnergy / run.totalTime,
                1e-12);
}

TEST(Runtime, GovernorIsResetBetweenRuns)
{
    // A second run must reproduce the first exactly (the governor's
    // state is cleared by the runtime).
    const Application app = makeCfd();
    BaselineGovernor governor(device().space(), 150.0);
    Runtime runtime(device());
    const AppRunResult a = runtime.run(app, governor);
    const AppRunResult b = runtime.run(app, governor);
    EXPECT_DOUBLE_EQ(a.totalTime, b.totalTime);
    EXPECT_DOUBLE_EQ(a.cardEnergy, b.cardEnergy);
}

TEST(Runtime, RejectsInvalidApplication)
{
    Application bad;
    bad.name = "bad";
    BaselineGovernor governor(device().space());
    EXPECT_THROW(Runtime(device()).run(bad, governor), ConfigError);
}

TEST(Runtime, TraceCsvExport)
{
    const Application app = makeMaxFlops();
    BaselineGovernor governor(device().space());
    const AppRunResult run = Runtime(device()).run(app, governor);
    std::ostringstream os;
    run.writeTraceCsv(os);
    const std::string csv = os.str();
    // Header + one row per invocation.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              run.trace.size() + 1);
    EXPECT_NE(csv.find("MaxFlops.MaxFlops"), std::string::npos);
    EXPECT_NE(csv.find("kernel,iteration,cuCount"), std::string::npos);
}
