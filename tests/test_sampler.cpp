/**
 * @file
 * Unit tests for the kernel-boundary sample history.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/counters/sampler.hh"

using namespace harmonia;

namespace
{

KernelSample
makeSample(const std::string &id, int iteration)
{
    KernelSample s;
    s.kernelId = id;
    s.iteration = iteration;
    s.execTime = 1e-3 * (iteration + 1);
    s.cardEnergy = 0.1;
    return s;
}

} // namespace

TEST(KernelHistory, EmptyLookups)
{
    const KernelHistory h;
    EXPECT_FALSE(h.last("a.k").has_value());
    EXPECT_FALSE(h.previous("a.k").has_value());
    EXPECT_EQ(h.count("a.k"), 0u);
    EXPECT_TRUE(h.samples("a.k").empty());
    EXPECT_TRUE(h.kernels().empty());
}

TEST(KernelHistory, LastAndPrevious)
{
    KernelHistory h;
    h.record(makeSample("a.k", 0));
    EXPECT_TRUE(h.last("a.k").has_value());
    EXPECT_FALSE(h.previous("a.k").has_value());
    h.record(makeSample("a.k", 1));
    EXPECT_EQ(h.last("a.k")->iteration, 1);
    EXPECT_EQ(h.previous("a.k")->iteration, 0);
}

TEST(KernelHistory, CapacityEvictsOldest)
{
    KernelHistory h(3);
    for (int i = 0; i < 5; ++i)
        h.record(makeSample("a.k", i));
    EXPECT_EQ(h.count("a.k"), 3u);
    const auto samples = h.samples("a.k");
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples.front().iteration, 2);
    EXPECT_EQ(samples.back().iteration, 4);
}

TEST(KernelHistory, KernelsAreIndependent)
{
    KernelHistory h;
    h.record(makeSample("a.k1", 0));
    h.record(makeSample("a.k2", 7));
    EXPECT_EQ(h.last("a.k1")->iteration, 0);
    EXPECT_EQ(h.last("a.k2")->iteration, 7);
    EXPECT_EQ(h.kernels().size(), 2u);
}

TEST(KernelHistory, ClearRemovesEverything)
{
    KernelHistory h;
    h.record(makeSample("a.k", 0));
    h.clear();
    EXPECT_EQ(h.count("a.k"), 0u);
}

TEST(KernelHistory, Validation)
{
    EXPECT_THROW(KernelHistory(1), ConfigError);
    KernelHistory h;
    KernelSample bad = makeSample("", 0);
    EXPECT_THROW(h.record(bad), ConfigError);
    bad = makeSample("a.k", 0);
    bad.execTime = -1.0;
    EXPECT_THROW(h.record(bad), ConfigError);
}
