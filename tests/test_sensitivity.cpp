/**
 * @file
 * Tests for sensitivity measurement and binning (paper Section 4.1,
 * Section 5.2's bin boundaries).
 */

#include <gtest/gtest.h>

#include "harmonia/core/sensitivity.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

} // namespace

TEST(SensitivityBins, BoundariesMatchPaper)
{
    // <30% LOW, 30-70% MED, >70% HIGH.
    EXPECT_EQ(binOf(0.0), SensitivityBin::Low);
    EXPECT_EQ(binOf(0.29), SensitivityBin::Low);
    EXPECT_EQ(binOf(0.30), SensitivityBin::Med);
    EXPECT_EQ(binOf(0.50), SensitivityBin::Med);
    EXPECT_EQ(binOf(0.70), SensitivityBin::Med);
    EXPECT_EQ(binOf(0.71), SensitivityBin::High);
    EXPECT_EQ(binOf(1.0), SensitivityBin::High);
}

TEST(SensitivityBins, ClampsOutOfRange)
{
    EXPECT_EQ(binOf(-0.5), SensitivityBin::Low);
    EXPECT_EQ(binOf(2.0), SensitivityBin::High);
}

TEST(SensitivityBins, Names)
{
    EXPECT_STREQ(sensitivityBinName(SensitivityBin::Low), "LOW");
    EXPECT_STREQ(sensitivityBinName(SensitivityBin::Med), "MED");
    EXPECT_STREQ(sensitivityBinName(SensitivityBin::High), "HIGH");
}

TEST(SensitivityVector, ComputeAggregatesCuAndFreq)
{
    SensitivityVector v;
    v.cuCount = 0.8;
    v.computeFreq = 0.4;
    EXPECT_DOUBLE_EQ(v.compute(), 0.6);
}

TEST(Sensitivity, MaxFlopsIsComputeSensitiveOnly)
{
    const KernelProfile k = makeMaxFlops().kernels.front();
    const SensitivityVector s = measureSensitivities(device(), k, 0);
    EXPECT_GT(s.compute(), 0.9);
    EXPECT_LT(s.memBandwidth, 0.05);
}

TEST(Sensitivity, DeviceMemoryIsBandwidthSensitive)
{
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const SensitivityVector s = measureSensitivities(device(), k, 0);
    EXPECT_GT(s.memBandwidth, 0.9);
    EXPECT_LT(s.cuCount, 0.3);
}

TEST(Sensitivity, TinyKernelInsensitiveToEverything)
{
    const KernelProfile k = appByName("SRAD").kernel("Prepare");
    const SensitivityVector s = measureSensitivities(device(), k, 0);
    EXPECT_LT(s.compute(), 0.1);
    EXPECT_LT(s.memBandwidth, 0.1);
}

TEST(Sensitivity, CacheThrashingYieldsNegativeCuSensitivity)
{
    // Reducing CUs *helps* BPT -> negative measured CU sensitivity.
    const KernelProfile k = appByName("BPT").kernel("FindK");
    const double cu = measureTunableSensitivity(device(), k, 0,
                                                Tunable::CuCount);
    EXPECT_LT(cu, 0.05);
}

TEST(Sensitivity, PerfectScalingGivesSensitivityNearOne)
{
    const KernelProfile k = makeMaxFlops().kernels.front();
    const double freq = measureTunableSensitivity(
        device(), k, 0, Tunable::ComputeFreq);
    EXPECT_NEAR(freq, 1.0, 0.1);
}

TEST(Sensitivity, LocalMeasurementAtMinConfigProbesUpward)
{
    const KernelProfile k = makeMaxFlops().kernels.front();
    const HardwareConfig minCfg = device().space().minConfig();
    const double s = measureTunableSensitivityAt(
        device(), k, 0, Tunable::ComputeFreq, minCfg);
    // Still compute-sensitive when measured upward from the floor.
    EXPECT_GT(s, 0.8);
}

TEST(Sensitivity, LocalAndGlobalAgreeAtMaxConfig)
{
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const HardwareConfig maxCfg = device().space().maxConfig();
    const SensitivityVector local =
        measureSensitivitiesAt(device(), k, 0, maxCfg);
    const SensitivityVector global =
        measureSensitivities(device(), k, 0);
    // Different probe distances, same qualitative ordering.
    EXPECT_GT(local.memBandwidth, 0.7);
    EXPECT_GT(global.memBandwidth, 0.7);
}

TEST(Sensitivity, CrossingMakesMemBoundKernelFreqSensitiveAtLowClock)
{
    // Figure 9: local compute-frequency sensitivity of DeviceMemory
    // rises as the compute clock falls.
    const KernelProfile k = makeDeviceMemory().kernels.front();
    HardwareConfig low = device().space().maxConfig();
    low.computeFreqMhz = 400;
    const double sLow = measureTunableSensitivityAt(
        device(), k, 0, Tunable::ComputeFreq, low);
    const double sHigh = measureTunableSensitivityAt(
        device(), k, 0, Tunable::ComputeFreq,
        device().space().maxConfig());
    EXPECT_GT(sLow, sHigh);
    EXPECT_GT(sLow, 0.8);
}
