/**
 * @file
 * Serving determinism: an identical request stream must yield
 * byte-identical response bodies regardless of worker count (--jobs 1
 * vs --jobs 8), micro-batching on/off, and how the stream is cut into
 * coalescing windows. This is the wire-level corollary of the factored
 * evaluator's bitwise guarantee (tests/test_sweep_determinism.cpp):
 * nothing about scheduling may leak into what a client observes.
 *
 * The `stats` verb is deliberately absent from the stream — it reports
 * wall-clock latencies and is the protocol's one sanctioned source of
 * nondeterminism.
 */

#include "serve/service.hh"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/json.hh"
#include "serve/protocol.hh"
#include "workloads/suite.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

/** A mixed-verb stream (no `stats`): partial and full-lattice
 * evaluates with overlapping config slices, governor sessions, a
 * sweep, and pings. */
std::vector<std::string>
requestStream(const ConfigSweep &sweep)
{
    const std::vector<HardwareConfig> &configs = sweep.configs();
    std::vector<std::string> kernelIds;
    for (const Application &app : standardSuite())
        for (const KernelProfile &k : app.kernels)
            kernelIds.push_back(k.id());

    std::vector<std::string> lines;
    int id = 0;
    auto push = [&](JsonValue req) {
        req.set("id", JsonValue(id++));
        lines.push_back(req.dump());
    };

    // Overlapping evaluate slices against a few (kernel, iteration)
    // invocations — the coalescer's dedup path.
    for (int r = 0; r < 12; ++r) {
        const std::string &kid = kernelIds[(r / 4) % kernelIds.size()];
        JsonValue cfgs = JsonValue::array();
        for (int i = 0; i < 6; ++i)
            cfgs.push(configToJson(
                configs[(r * 3 + i * 7) % configs.size()]));
        push(JsonValue::object({
            {"schema", JsonValue(kRequestSchema)},
            {"verb", JsonValue("evaluate")},
            {"kernel", JsonValue(kid)},
            {"iteration", JsonValue(r % 2)},
            {"configs", std::move(cfgs)},
        }));
    }

    // Two interleaved governor sessions stepping the same kernel.
    for (int step = 0; step < 4; ++step) {
        for (const char *session : {"alpha", "beta"}) {
            push(JsonValue::object({
                {"schema", JsonValue(kRequestSchema)},
                {"verb", JsonValue("govern")},
                {"session", JsonValue(session)},
                {"governor", JsonValue("baseline")},
                {"kernel", JsonValue(kernelIds.front())},
                {"iteration", JsonValue(step)},
            }));
        }
    }

    // One full sweep (memoizes the lattice) then a full-lattice
    // evaluate that must be served from the same memo.
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("sweep")},
        {"kernel", JsonValue(kernelIds[1])},
        {"iteration", JsonValue(0)},
        {"objective", JsonValue("min_ed2")},
        {"top", JsonValue(3)},
    }));
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("evaluate")},
        {"kernel", JsonValue(kernelIds[1])},
        {"iteration", JsonValue(0)},
        {"configs", JsonValue("all")},
    }));

    // An error in the stream must also be deterministic.
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("evaluate")},
        {"kernel", JsonValue("NoSuch.Kernel")},
        {"configs", JsonValue("all")},
    }));
    push(JsonValue::object({{"schema", JsonValue(kRequestSchema)},
                            {"verb", JsonValue("ping")}}));
    return lines;
}

/** Run @p lines through a fresh service, cut into windows of
 * @p windowSize requests. @p simd selects the batched SIMD lattice
 * kernels or the scalar reference path. */
std::vector<std::string>
replay(int jobs, bool batching, size_t windowSize, bool simd = true)
{
    ServiceOptions opt;
    opt.jobs = jobs;
    opt.batching = batching;
    opt.simd = simd;
    Service service(opt);
    const std::vector<std::string> lines =
        requestStream(service.sweep());

    std::vector<std::string> responses;
    for (size_t begin = 0; begin < lines.size();
         begin += windowSize) {
        const size_t end =
            std::min(begin + windowSize, lines.size());
        const std::vector<std::string> window(
            lines.begin() + begin, lines.begin() + end);
        for (std::string &r : service.processBatch(window))
            responses.push_back(std::move(r));
    }
    return responses;
}

TEST(ServeDeterminism, ResponsesIndependentOfWorkerCount)
{
    const std::vector<std::string> serial = replay(1, true, 8);
    const std::vector<std::string> parallel = replay(8, true, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "response " << i;
}

TEST(ServeDeterminism, ResponsesIndependentOfBatching)
{
    const std::vector<std::string> batched = replay(4, true, 8);
    const std::vector<std::string> unbatched = replay(4, false, 8);
    ASSERT_EQ(batched.size(), unbatched.size());
    for (size_t i = 0; i < batched.size(); ++i)
        EXPECT_EQ(batched[i], unbatched[i]) << "response " << i;
}

TEST(ServeDeterminism, ResponsesIndependentOfWindowBoundaries)
{
    const std::vector<std::string> one = replay(2, true, 1);
    const std::vector<std::string> big = replay(2, true, 1000);
    ASSERT_EQ(one.size(), big.size());
    for (size_t i = 0; i < one.size(); ++i)
        EXPECT_EQ(one[i], big[i]) << "response " << i;
}

// The wire-level face of the scalar-vs-SIMD bitwise contract
// (tests/test_simd_equivalence.cpp): a client must not be able to
// tell which lattice kernels the daemon ran.
TEST(ServeDeterminism, ResponsesIndependentOfSimdPath)
{
    const std::vector<std::string> simd = replay(4, true, 8, true);
    const std::vector<std::string> scalar = replay(4, true, 8, false);
    ASSERT_EQ(simd.size(), scalar.size());
    for (size_t i = 0; i < simd.size(); ++i)
        EXPECT_EQ(simd[i], scalar[i]) << "response " << i;
}

TEST(ServeDeterminism, RepeatRunsAreByteIdentical)
{
    EXPECT_EQ(replay(8, true, 8), replay(8, true, 8));
}

} // namespace
