/**
 * @file
 * Serving determinism: an identical request stream must yield
 * byte-identical response bodies regardless of worker count (--jobs 1
 * vs --jobs 8), micro-batching on/off, and how the stream is cut into
 * coalescing windows. This is the wire-level corollary of the factored
 * evaluator's bitwise guarantee (tests/test_sweep_determinism.cpp):
 * nothing about scheduling may leak into what a client observes.
 *
 * The `stats` verb is deliberately absent from the stream — it reports
 * wall-clock latencies and is the protocol's one sanctioned source of
 * nondeterminism.
 *
 * The transport tests extend the contract through the reactor: the
 * same stream pushed through a real Server over stdio pipes, a
 * Unix-domain socket, and TCP must come back byte-identical to the
 * in-process Service replay — transport framing, coalescing windows,
 * and connection plumbing leak nothing.
 */

#include "harmonia/serve/service.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harmonia/serve/json.hh"
#include "harmonia/serve/protocol.hh"
#include "harmonia/serve/server.hh"
#include "harmonia/workloads/suite.hh"
#include "serve/snapshot.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

/** A mixed-verb stream (no `stats`): partial and full-lattice
 * evaluates with overlapping config slices, governor sessions, a
 * sweep, and pings. */
std::vector<std::string>
requestStream(const ConfigSweep &sweep)
{
    const std::vector<HardwareConfig> &configs = sweep.configs();
    std::vector<std::string> kernelIds;
    for (const Application &app : standardSuite())
        for (const KernelProfile &k : app.kernels)
            kernelIds.push_back(k.id());

    std::vector<std::string> lines;
    int id = 0;
    auto push = [&](JsonValue req) {
        req.set("id", JsonValue(id++));
        lines.push_back(req.dump());
    };

    // Overlapping evaluate slices against a few (kernel, iteration)
    // invocations — the coalescer's dedup path.
    for (int r = 0; r < 12; ++r) {
        const std::string &kid = kernelIds[(r / 4) % kernelIds.size()];
        JsonValue cfgs = JsonValue::array();
        for (int i = 0; i < 6; ++i)
            cfgs.push(configToJson(
                configs[(r * 3 + i * 7) % configs.size()]));
        push(JsonValue::object({
            {"schema", JsonValue(kRequestSchema)},
            {"verb", JsonValue("evaluate")},
            {"kernel", JsonValue(kid)},
            {"iteration", JsonValue(r % 2)},
            {"configs", std::move(cfgs)},
        }));
    }

    // Two interleaved governor sessions stepping the same kernel.
    for (int step = 0; step < 4; ++step) {
        for (const char *session : {"alpha", "beta"}) {
            push(JsonValue::object({
                {"schema", JsonValue(kRequestSchema)},
                {"verb", JsonValue("govern")},
                {"session", JsonValue(session)},
                {"governor", JsonValue("baseline")},
                {"kernel", JsonValue(kernelIds.front())},
                {"iteration", JsonValue(step)},
            }));
        }
    }

    // One full sweep (memoizes the lattice) then a full-lattice
    // evaluate that must be served from the same memo.
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("sweep")},
        {"kernel", JsonValue(kernelIds[1])},
        {"iteration", JsonValue(0)},
        {"objective", JsonValue("min_ed2")},
        {"top", JsonValue(3)},
    }));
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("evaluate")},
        {"kernel", JsonValue(kernelIds[1])},
        {"iteration", JsonValue(0)},
        {"configs", JsonValue("all")},
    }));

    // An error in the stream must also be deterministic.
    push(JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"verb", JsonValue("evaluate")},
        {"kernel", JsonValue("NoSuch.Kernel")},
        {"configs", JsonValue("all")},
    }));
    push(JsonValue::object({{"schema", JsonValue(kRequestSchema)},
                            {"verb", JsonValue("ping")}}));
    return lines;
}

/** Run @p lines through a fresh service, cut into windows of
 * @p windowSize requests. @p simd selects the batched SIMD lattice
 * kernels or the scalar reference path. */
std::vector<std::string>
replay(int jobs, bool batching, size_t windowSize, bool simd = true)
{
    ServiceOptions opt;
    opt.jobs = jobs;
    opt.batching = batching;
    opt.simd = simd;
    Service service(opt);
    const std::vector<std::string> lines =
        requestStream(service.sweep());

    std::vector<std::string> responses;
    for (size_t begin = 0; begin < lines.size();
         begin += windowSize) {
        const size_t end =
            std::min(begin + windowSize, lines.size());
        const std::vector<std::string> window(
            lines.begin() + begin, lines.begin() + end);
        for (std::string &r : service.processBatch(window))
            responses.push_back(std::move(r));
    }
    return responses;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readLine(int fd, std::string &carry, std::string &line)
{
    while (true) {
        const size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char buf[8192];
        const ssize_t n = read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        carry.append(buf, static_cast<size_t>(n));
    }
}

int
connectUnix(const std::string &path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(int port)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

/**
 * Push requestStream() through a real reactor over @p mode ("stdio",
 * "unix", or "tcp") on one connection and return the response lines in
 * request order. The server runs on a thread inside this process; the
 * test plays the client.
 */
std::vector<std::string>
transportReplay(const std::string &mode, bool batching)
{
    ServiceOptions opt;
    opt.jobs = 2;
    opt.batching = batching;
    Service service(opt);
    const std::vector<std::string> lines =
        requestStream(service.sweep());

    ServerOptions sopt;
    int reqPipe[2] = {-1, -1};
    int respPipe[2] = {-1, -1};
    std::string sockPath;
    if (mode == "stdio") {
        if (pipe(reqPipe) != 0 || pipe(respPipe) != 0)
            return {};
        sopt.stdio = true;
        sopt.stdioReadFd = reqPipe[0];
        sopt.stdioWriteFd = respPipe[1];
    } else if (mode == "unix") {
        sockPath = "/tmp/harmonia_det_" + std::to_string(getpid()) +
                   ".sock";
        sopt.socketPath = sockPath;
    } else {
        sopt.tcpBind = "127.0.0.1:0";
    }

    Server server(service, sopt);
    std::ostringstream sink; // The reactor narrates on stderr.
    std::streambuf *cerrBuf = std::cerr.rdbuf(sink.rdbuf());
    if (!server.start().ok()) {
        std::cerr.rdbuf(cerrBuf);
        return {};
    }
    std::thread reactor([&server] { server.run(); });

    int wfd = -1, rfd = -1;
    if (mode == "stdio") {
        wfd = reqPipe[1];
        rfd = respPipe[0];
    } else if (mode == "unix") {
        wfd = rfd = connectUnix(sockPath);
    } else {
        wfd = rfd = connectTcp(server.tcpPort());
    }

    std::vector<std::string> responses;
    if (wfd >= 0 && rfd >= 0) {
        std::string all;
        for (const std::string &l : lines) {
            all += l;
            all += '\n';
        }
        sendAll(wfd, all);
        if (mode == "stdio")
            close(wfd); // EOF doubles as the shutdown request.

        std::string carry;
        while (responses.size() < lines.size()) {
            std::string line;
            if (!readLine(rfd, carry, line))
                break;
            responses.push_back(std::move(line));
        }
        if (mode != "stdio") {
            // A trailing shutdown verb (not part of the compared
            // stream) stops the reactor.
            sendAll(wfd, std::string("{\"schema\":\"") +
                             kRequestSchema +
                             "\",\"id\":\"bye\",\"verb\":"
                             "\"shutdown\"}\n");
            std::string line;
            readLine(rfd, carry, line);
        }
    }
    reactor.join();
    std::cerr.rdbuf(cerrBuf);
    if (mode == "stdio") {
        close(reqPipe[0]);
        close(respPipe[0]);
        close(respPipe[1]);
    } else if (rfd >= 0) {
        close(rfd);
    }
    return responses;
}

// Transport must be invisible: stdio pipes, a Unix socket, and TCP
// all return the bytes the in-process Service replay produces.
TEST(ServeDeterminism, ResponsesIndependentOfTransport)
{
    const std::vector<std::string> base = replay(2, true, 1000);
    for (const char *mode : {"stdio", "unix", "tcp"}) {
        const std::vector<std::string> got =
            transportReplay(mode, true);
        ASSERT_EQ(base.size(), got.size()) << "transport " << mode;
        for (size_t i = 0; i < base.size(); ++i)
            EXPECT_EQ(base[i], got[i])
                << "transport " << mode << ", response " << i;
    }
}

// ... and the batching toggle stays invisible through a real socket.
TEST(ServeDeterminism, TcpResponsesIndependentOfBatching)
{
    EXPECT_EQ(transportReplay("tcp", true),
              transportReplay("tcp", false));
}

TEST(ServeDeterminism, ResponsesIndependentOfWorkerCount)
{
    const std::vector<std::string> serial = replay(1, true, 8);
    const std::vector<std::string> parallel = replay(8, true, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "response " << i;
}

TEST(ServeDeterminism, ResponsesIndependentOfBatching)
{
    const std::vector<std::string> batched = replay(4, true, 8);
    const std::vector<std::string> unbatched = replay(4, false, 8);
    ASSERT_EQ(batched.size(), unbatched.size());
    for (size_t i = 0; i < batched.size(); ++i)
        EXPECT_EQ(batched[i], unbatched[i]) << "response " << i;
}

TEST(ServeDeterminism, ResponsesIndependentOfWindowBoundaries)
{
    const std::vector<std::string> one = replay(2, true, 1);
    const std::vector<std::string> big = replay(2, true, 1000);
    ASSERT_EQ(one.size(), big.size());
    for (size_t i = 0; i < one.size(); ++i)
        EXPECT_EQ(one[i], big[i]) << "response " << i;
}

// The wire-level face of the scalar-vs-SIMD bitwise contract
// (tests/test_simd_equivalence.cpp): a client must not be able to
// tell which lattice kernels the daemon ran.
TEST(ServeDeterminism, ResponsesIndependentOfSimdPath)
{
    const std::vector<std::string> simd = replay(4, true, 8, true);
    const std::vector<std::string> scalar = replay(4, true, 8, false);
    ASSERT_EQ(simd.size(), scalar.size());
    for (size_t i = 0; i < simd.size(); ++i)
        EXPECT_EQ(simd[i], scalar[i]) << "response " << i;
}

TEST(ServeDeterminism, RepeatRunsAreByteIdentical)
{
    EXPECT_EQ(replay(8, true, 8), replay(8, true, 8));
}

/** replay() against a service with a persistent-cache file attached;
 * optionally drains the caches to disk afterwards (the daemon's
 * SIGTERM path). Corrupt-snapshot runs narrate on stderr, which is
 * swallowed so the log stays signal. */
std::vector<std::string>
cacheReplay(const std::string &cacheFile, bool save)
{
    ServiceOptions opt;
    opt.jobs = 2;
    opt.batching = true;
    opt.cacheFile = cacheFile;
    std::ostringstream sink;
    std::streambuf *cerrBuf = std::cerr.rdbuf(sink.rdbuf());
    Service service(opt);
    const std::vector<std::string> lines =
        requestStream(service.sweep());
    std::vector<std::string> responses = service.processBatch(lines);
    if (save) {
        EXPECT_TRUE(service.savePersistentCache().ok());
    }
    std::cerr.rdbuf(cerrBuf);
    return responses;
}

/** Overwrite @p path with @p bytes (plain, not atomic — this *is* the
 * corruption). */
void
clobberFile(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(nullptr, f);
    ASSERT_EQ(bytes.size(),
              std::fwrite(bytes.data(), 1, bytes.size(), f));
    std::fclose(f);
}

// The persistent cache's own determinism contract: whether a point
// was computed this process or restored from a snapshot — and whether
// that snapshot is present, absent, stale, or damaged — must be
// invisible in the response bytes. Latency is the only degree of
// freedom persistence gets.
TEST(ServeDeterminism, ResponsesIndependentOfSnapshotState)
{
    const std::vector<std::string> base = replay(2, true, 1000);
    const std::string path = "/tmp/harmonia_det_snap_" +
                             std::to_string(getpid()) + ".snap";
    std::remove(path.c_str());

    // Cold start (no file yet), populating and draining to disk.
    EXPECT_EQ(base, cacheReplay(path, true));

    // Warm restart: every previously evaluated point now comes off
    // the snapshot instead of the lattice.
    std::string good;
    ASSERT_TRUE(readSnapshotBytes(path, &good).ok());
    ASSERT_FALSE(good.empty());
    EXPECT_EQ(base, cacheReplay(path, false));

    // Header bit flip: the whole file is rejected at index time and
    // the daemon cold-starts.
    std::string corrupt = good;
    corrupt[5] = static_cast<char>(
        static_cast<uint8_t>(corrupt[5]) ^ 0x10);
    clobberFile(path, corrupt);
    EXPECT_EQ(base, cacheReplay(path, false));

    // Blob bit flip (last byte lives in the final entry body): only
    // the damaged entry falls back to recompute.
    corrupt = good;
    corrupt.back() = static_cast<char>(
        static_cast<uint8_t>(corrupt.back()) ^ 0x01);
    clobberFile(path, corrupt);
    EXPECT_EQ(base, cacheReplay(path, false));

    // Truncation (a torn copy of the file).
    clobberFile(path, good.substr(0, good.size() / 2));
    EXPECT_EQ(base, cacheReplay(path, false));

    std::remove(path.c_str());
}

} // namespace
