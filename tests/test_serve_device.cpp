/**
 * @file
 * Multi-device serving: the `device` request field must round-trip
 * through evaluate/govern/sweep, unknown names must come back as the
 * structured "unknown_device" wire error, governor sessions bind to
 * one device for life, and the `stats` devices section must expose
 * per-device cache partitioning. Device-less streams stay
 * byte-identical to the pre-registry protocol (no `device` member is
 * ever added to their responses).
 */

#include "harmonia/serve/service.hh"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/serve/json.hh"
#include "harmonia/serve/protocol.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

std::string
firstKernelId()
{
    return standardSuite().front().kernels.front().id();
}

JsonValue
request(const char *verb)
{
    return JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"id", JsonValue(1)},
        {"verb", JsonValue(verb)},
    });
}

/** Process one request line and parse the one response. */
JsonValue
roundTrip(Service &service, const JsonValue &req)
{
    const std::vector<std::string> responses =
        service.processBatch({req.dump()});
    EXPECT_EQ(responses.size(), 1u);
    Result<JsonValue> doc = parseJson(responses.front());
    EXPECT_TRUE(doc.ok()) << responses.front();
    return doc.ok() ? doc.value() : JsonValue();
}

bool
isOk(const JsonValue &resp)
{
    const JsonValue *ok = resp.find("ok");
    return ok && ok->isBool() && ok->asBool();
}

std::string
errorCode(const JsonValue &resp)
{
    const JsonValue *error = resp.find("error");
    if (!error)
        return {};
    const JsonValue *code = error->find("code");
    return code ? code->asString() : std::string();
}

TEST(ServeDevice, EvaluateRoundTripsAndEchoesTheDevice)
{
    Service service(ServiceOptions{});

    JsonValue req = request("evaluate");
    req.set("kernel", JsonValue(firstKernelId()));
    req.set("device", JsonValue("HBM-Stacked")); // case-insensitive
    req.set("configs", JsonValue("all"));
    const JsonValue resp = roundTrip(service, req);
    ASSERT_TRUE(isOk(resp)) << resp.dump();

    const JsonValue *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue *device = result->find("device");
    ASSERT_NE(device, nullptr);
    EXPECT_EQ(device->asString(), "hbm-stacked"); // canonical name
    // The full lattice is the stacked part's 8x8x8, not the default
    // device's 448 points.
    EXPECT_EQ(result->find("points")->asInt(), 512);

    // A device-less request must not grow a device member: the
    // pre-registry response bytes are part of the protocol contract.
    JsonValue plain = request("evaluate");
    plain.set("kernel", JsonValue(firstKernelId()));
    plain.set("configs", JsonValue("all"));
    const JsonValue presp = roundTrip(service, plain);
    ASSERT_TRUE(isOk(presp)) << presp.dump();
    EXPECT_EQ(presp.find("result")->find("device"), nullptr);
    EXPECT_EQ(presp.find("result")->find("points")->asInt(), 448);
}

TEST(ServeDevice, UnknownDeviceIsAStructuredWireError)
{
    Service service(ServiceOptions{});
    for (const char *verb : {"evaluate", "sweep"}) {
        JsonValue req = request(verb);
        req.set("kernel", JsonValue(firstKernelId()));
        req.set("device", JsonValue("gtx480"));
        if (std::string(verb) == "evaluate")
            req.set("configs", JsonValue("all"));
        const JsonValue resp = roundTrip(service, req);
        EXPECT_FALSE(isOk(resp)) << resp.dump();
        EXPECT_EQ(errorCode(resp), "unknown_device") << resp.dump();
    }

    JsonValue gov = request("govern");
    gov.set("session", JsonValue("s1"));
    gov.set("governor", JsonValue("baseline"));
    gov.set("device", JsonValue("gtx480"));
    gov.set("kernel", JsonValue(firstKernelId()));
    const JsonValue resp = roundTrip(service, gov);
    EXPECT_FALSE(isOk(resp));
    EXPECT_EQ(errorCode(resp), "unknown_device");
}

TEST(ServeDevice, GovernSessionsBindToOneDeviceForLife)
{
    Service service(ServiceOptions{});

    JsonValue open = request("govern");
    open.set("session", JsonValue("stacked"));
    open.set("governor", JsonValue("baseline"));
    open.set("device", JsonValue("hbm-stacked"));
    open.set("kernel", JsonValue(firstKernelId()));
    const JsonValue first = roundTrip(service, open);
    ASSERT_TRUE(isOk(first)) << first.dump();
    EXPECT_EQ(first.find("result")->find("device")->asString(),
              "hbm-stacked");

    // Later steps may omit the device (the binding persists) or
    // restate it, including with different case.
    JsonValue step = request("govern");
    step.set("session", JsonValue("stacked"));
    step.set("kernel", JsonValue(firstKernelId()));
    step.set("iteration", JsonValue(1));
    ASSERT_TRUE(isOk(roundTrip(service, step)));
    step.set("device", JsonValue("HBM-STACKED"));
    ASSERT_TRUE(isOk(roundTrip(service, step)));

    // Restating a different device is a precondition failure, not a
    // silent rebind.
    step.set("device", JsonValue("hd7970"));
    const JsonValue clash = roundTrip(service, step);
    EXPECT_FALSE(isOk(clash));
    EXPECT_EQ(errorCode(clash), "failed_precondition");
}

TEST(ServeDevice, StatsExposesPerDeviceCachePartitioning)
{
    Service service(ServiceOptions{});

    // Touch the default device and the stacked device with the same
    // kernel; their sweep memos must fill independently.
    for (const char *device : {"", "hbm-stacked"}) {
        JsonValue req = request("sweep");
        req.set("kernel", JsonValue(firstKernelId()));
        if (*device)
            req.set("device", JsonValue(device));
        ASSERT_TRUE(isOk(roundTrip(service, req)));
    }

    const JsonValue stats = roundTrip(service, request("stats"));
    ASSERT_TRUE(isOk(stats)) << stats.dump();
    const JsonValue *devices = stats.find("result")->find("devices");
    ASSERT_NE(devices, nullptr);

    // Every registered name is listed, whether instantiated or not.
    const JsonValue *registered = devices->find("registered");
    ASSERT_NE(registered, nullptr);
    EXPECT_GE(registered->asArray().size(), 3u);

    const JsonValue *active = devices->find("active");
    ASSERT_NE(active, nullptr);
    const JsonValue *hd = active->find("hd7970");
    const JsonValue *hbm = active->find("hbm-stacked");
    ASSERT_NE(hd, nullptr);
    ASSERT_NE(hbm, nullptr);
    // ampere-ga100 was never requested: registered but not active.
    EXPECT_EQ(active->find("ampere-ga100"), nullptr);

    // One sweep landed in each device's own memo — partitioned
    // caches, not a shared one.
    EXPECT_EQ(hd->find("sweep_cache")->find("entries")->asInt(), 1);
    EXPECT_EQ(hbm->find("sweep_cache")->find("entries")->asInt(), 1);
    EXPECT_EQ(hd->find("lattice_points")->asInt(), 448);
    EXPECT_EQ(hbm->find("lattice_points")->asInt(), 512);
    EXPECT_GE(hd->find("requests")->asInt(), 1);
    EXPECT_GE(hbm->find("requests")->asInt(), 1);
}

TEST(ServeDevice, DefaultDeviceOptionRebasesDevicelessRequests)
{
    ServiceOptions opt;
    opt.defaultDevice = "hbm-stacked"; // harmoniad --device
    Service service(opt);
    EXPECT_EQ(service.device().name(), "hbm-stacked");

    JsonValue req = request("evaluate");
    req.set("kernel", JsonValue(firstKernelId()));
    req.set("configs", JsonValue("all"));
    const JsonValue resp = roundTrip(service, req);
    ASSERT_TRUE(isOk(resp)) << resp.dump();
    // Device-less request -> no device echo, but the stacked lattice.
    EXPECT_EQ(resp.find("result")->find("device"), nullptr);
    EXPECT_EQ(resp.find("result")->find("points")->asInt(), 512);

    // An unknown default is a construction-time configuration error.
    ServiceOptions bad;
    bad.defaultDevice = "gtx480";
    EXPECT_THROW(Service{bad}, ConfigError);
}

TEST(ServeDevice, ExplicitDefaultNameKeepsResponsesByteIdentical)
{
    // `--device hd7970` must be indistinguishable from no flag at
    // all, response bytes included.
    ServiceOptions named;
    named.defaultDevice = "hd7970";
    Service a{ServiceOptions{}};
    Service b{named};

    std::vector<std::string> lines;
    JsonValue eval = request("evaluate");
    eval.set("kernel", JsonValue(firstKernelId()));
    eval.set("configs", JsonValue("all"));
    lines.push_back(eval.dump());
    JsonValue sweep = request("sweep");
    sweep.set("kernel", JsonValue(firstKernelId()));
    sweep.set("top", JsonValue(3));
    lines.push_back(sweep.dump());

    EXPECT_EQ(a.processBatch(lines), b.processBatch(lines));
}

} // namespace
