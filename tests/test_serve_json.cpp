/**
 * @file
 * Tests for the serving layer's JSON value/parser/serializer
 * (serve/json.hh): round-trips, deterministic dumps, structured parse
 * errors, and the numeric round-trip guarantees the wire protocol
 * depends on.
 */

#include "harmonia/serve/json.hh"

#include <string>

#include <gtest/gtest.h>

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

JsonValue
parsed(const std::string &text)
{
    Result<JsonValue> r = parseJson(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().str();
    return r.ok() ? std::move(r.value()) : JsonValue();
}

TEST(ServeJson, ScalarRoundTrips)
{
    EXPECT_EQ(parsed("null").dump(), "null");
    EXPECT_EQ(parsed("true").dump(), "true");
    EXPECT_EQ(parsed("false").dump(), "false");
    EXPECT_EQ(parsed("0").dump(), "0");
    EXPECT_EQ(parsed("-17").dump(), "-17");
    EXPECT_EQ(parsed("\"hi\"").dump(), "\"hi\"");
    EXPECT_EQ(parsed("3.5").dump(), "3.5");
}

TEST(ServeJson, IntegersStayIntegral)
{
    const JsonValue v = parsed("9007199254740993");
    ASSERT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), 9007199254740993ll);
    EXPECT_EQ(v.dump(), "9007199254740993");
}

TEST(ServeJson, DoublesRoundTripShortest)
{
    // std::to_chars shortest form: parse(dump(x)) == x exactly.
    for (const double x : {0.1, 1e-9, 123456.789, 2.5e300}) {
        const JsonValue v(x);
        const JsonValue back = parsed(v.dump());
        ASSERT_TRUE(back.isNumber());
        EXPECT_EQ(back.asDouble(), x) << v.dump();
    }
}

TEST(ServeJson, ObjectsPreserveInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", JsonValue(1));
    obj.set("alpha", JsonValue(2));
    obj.set("mid", JsonValue::array({JsonValue(1), JsonValue(2)}));
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":[1,2]}");

    // set() on an existing key overwrites in place, keeping position.
    obj.set("zebra", JsonValue(9));
    EXPECT_EQ(obj.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":[1,2]}");
}

TEST(ServeJson, FindLocatesMembers)
{
    const JsonValue obj =
        parsed("{\"a\":{\"b\":[10,20]},\"c\":null}");
    ASSERT_NE(obj.find("a"), nullptr);
    const JsonValue *c = obj.find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->isNull());
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_EQ(obj.find("a")->find("b")->asArray()[1].asInt(), 20);
}

TEST(ServeJson, StringEscapes)
{
    const JsonValue v = parsed("\"line\\n\\ttab \\\"q\\\" \\u0041\"");
    EXPECT_EQ(v.asString(), "line\n\ttab \"q\" A");
    // Control characters re-escape on dump.
    EXPECT_EQ(JsonValue(std::string("a\nb")).dump(), "\"a\\nb\"");
    EXPECT_EQ(jsonEscape("x\"y\\z"), "x\\\"y\\\\z");
}

TEST(ServeJson, WhitespaceAndNesting)
{
    const JsonValue v = parsed("  { \"k\" : [ 1 , 2 ] }  ");
    EXPECT_EQ(v.dump(), "{\"k\":[1,2]}");
}

TEST(ServeJson, ParseErrorsAreStructured)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
          "1 2" /* trailing document */, "{'a':1}"}) {
        Result<JsonValue> r = parseJson(bad);
        ASSERT_FALSE(r.ok()) << "accepted: " << bad;
        EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument)
            << bad;
        EXPECT_FALSE(r.status().message().empty()) << bad;
    }
}

TEST(ServeJson, DepthCapRejectsDeepNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    Result<JsonValue> r = parseJson(deep);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::InvalidArgument);

    // 32 levels is comfortably inside the cap.
    std::string fine(32, '[');
    fine += std::string(32, ']');
    EXPECT_TRUE(parseJson(fine).ok());
}

TEST(ServeJson, DumpIsDeterministic)
{
    const std::string text =
        "{\"b\":1,\"a\":[true,null,{\"x\":0.25}],\"c\":\"s\"}";
    const std::string once = parsed(text).dump();
    EXPECT_EQ(once, text);
    EXPECT_EQ(parsed(once).dump(), once);
}

TEST(ServeJson, EqualityIsStructural)
{
    EXPECT_EQ(parsed("{\"a\":[1,2]}"), parsed("{ \"a\" : [1, 2] }"));
    EXPECT_NE(parsed("{\"a\":[1,2]}"), parsed("{\"a\":[2,1]}"));
}

} // namespace
