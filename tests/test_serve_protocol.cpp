/**
 * @file
 * Protocol edge-case tests for the harmoniad service (serve/service.hh):
 * every malformed or unsatisfiable request line must produce a schema'd
 * error reply — correct code, echoed id — and leave the service
 * serving. Covers the six cases the wire contract calls out: malformed
 * JSON, unknown verb, unknown kernel, off-lattice config, oversized
 * batch, and shutdown arriving mid-batch.
 */

#include "harmonia/serve/service.hh"

#include <string>

#include <gtest/gtest.h>

#include "harmonia/serve/json.hh"
#include "harmonia/serve/protocol.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

/** Parse a response line (must be valid JSON — the daemon never emits
 * anything else). */
JsonValue
response(const std::string &line)
{
    Result<JsonValue> r = parseJson(line);
    EXPECT_TRUE(r.ok()) << line;
    return r.ok() ? std::move(r.value()) : JsonValue();
}

/** Assert @p line is an error reply and return its error.code. */
std::string
errorCode(const std::string &line)
{
    const JsonValue resp = response(line);
    EXPECT_EQ(resp.find("schema")->asString(), kResponseSchema);
    EXPECT_FALSE(resp.find("ok")->asBool()) << line;
    const JsonValue *err = resp.find("error");
    EXPECT_NE(err, nullptr) << line;
    if (err == nullptr)
        return {};
    EXPECT_FALSE(err->find("message")->asString().empty());
    return err->find("code")->asString();
}

bool
isOk(const std::string &line)
{
    const JsonValue resp = response(line);
    const JsonValue *ok = resp.find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool();
}

std::string
evaluateLine(int id, const std::string &kernel, const JsonValue &cfgs)
{
    JsonValue req = JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"id", JsonValue(id)},
        {"verb", JsonValue("evaluate")},
        {"kernel", JsonValue(kernel)},
        {"iteration", JsonValue(0)},
        {"configs", cfgs},
    });
    return req.dump();
}

std::string
pingLine(int id)
{
    return JsonValue::object({{"schema", JsonValue(kRequestSchema)},
                              {"id", JsonValue(id)},
                              {"verb", JsonValue("ping")}})
        .dump();
}

class ServeProtocolTest : public ::testing::Test
{
  protected:
    ServeProtocolTest() : service_(makeOptions()) {}

    static ServiceOptions makeOptions()
    {
        ServiceOptions opt;
        opt.jobs = 1;
        opt.maxConfigsPerRequest = 8; // Small cap to test overflow.
        opt.maxRequestBytes = 4096;
        return opt;
    }

    /** A config on the lattice (smallest point). */
    static JsonValue onLattice()
    {
        return JsonValue::object({{"cu", JsonValue(4)},
                                  {"compute_mhz", JsonValue(300)},
                                  {"mem_mhz", JsonValue(475)}});
    }

    /** The service must still answer after an error reply. */
    void expectStillServing()
    {
        EXPECT_TRUE(isOk(service_.processLine(pingLine(999))));
        EXPECT_FALSE(service_.shutdownRequested());
    }

    Service service_;
    const std::string kKernel = "Graph500.BottomStepUp";
};

TEST_F(ServeProtocolTest, MalformedJsonLine)
{
    for (const char *bad :
         {"this is not json", "{\"schema\":", "[1,2,3]", ""}) {
        const std::string reply = service_.processLine(bad);
        EXPECT_EQ(errorCode(reply), "invalid_argument") << bad;
    }
    EXPECT_EQ(service_.metrics().malformedLines(), 4u);
    expectStillServing();
}

TEST_F(ServeProtocolTest, MissingOrWrongSchema)
{
    EXPECT_EQ(errorCode(service_.processLine(
                  "{\"verb\":\"ping\",\"id\":1}")),
              "invalid_argument");
    EXPECT_EQ(errorCode(service_.processLine(
                  "{\"schema\":\"bogus/9\",\"verb\":\"ping\"}")),
              "invalid_argument");
    expectStillServing();
}

TEST_F(ServeProtocolTest, UnknownVerb)
{
    const std::string reply = service_.processLine(
        "{\"schema\":\"harmonia.request/1\",\"id\":7,"
        "\"verb\":\"frobnicate\"}");
    EXPECT_EQ(errorCode(reply), "invalid_argument");
    // The id still correlates even though the request failed.
    EXPECT_EQ(response(reply).find("id")->asInt(), 7);
    expectStillServing();
}

TEST_F(ServeProtocolTest, UnknownKernelId)
{
    const std::string reply = service_.processLine(evaluateLine(
        3, "NoSuchApp.NoSuchKernel",
        JsonValue::array({onLattice()})));
    EXPECT_EQ(errorCode(reply), "not_found");
    EXPECT_EQ(response(reply).find("id")->asInt(), 3);
    expectStillServing();
}

TEST_F(ServeProtocolTest, OffLatticeConfig)
{
    JsonValue off = JsonValue::object({{"cu", JsonValue(17)},
                                       {"compute_mhz", JsonValue(700)},
                                       {"mem_mhz", JsonValue(925)}});
    const std::string reply = service_.processLine(
        evaluateLine(4, kKernel, JsonValue::array({std::move(off)})));
    EXPECT_EQ(errorCode(reply), "invalid_argument");
    expectStillServing();
}

TEST_F(ServeProtocolTest, OversizedBatchIsResourceExhausted)
{
    // More configs than maxConfigsPerRequest (8).
    JsonValue cfgs = JsonValue::array();
    for (int i = 0; i < 9; ++i)
        cfgs.push(onLattice());
    EXPECT_EQ(errorCode(service_.processLine(
                  evaluateLine(5, kKernel, cfgs))),
              "resource_exhausted");

    // A line longer than maxRequestBytes is rejected before parsing.
    std::string fat = evaluateLine(6, kKernel,
                                   JsonValue::array({onLattice()}));
    fat.insert(fat.size() - 1, std::string(8192, ' '));
    EXPECT_EQ(errorCode(service_.processLine(fat)),
              "resource_exhausted");
    expectStillServing();
}

TEST_F(ServeProtocolTest, ShutdownMidBatchStillAnswersEveryRequest)
{
    const std::vector<std::string> lines = {
        evaluateLine(1, kKernel, JsonValue::array({onLattice()})),
        JsonValue::object({{"schema", JsonValue(kRequestSchema)},
                           {"id", JsonValue(2)},
                           {"verb", JsonValue("shutdown")}})
            .dump(),
        evaluateLine(3, kKernel, JsonValue::array({onLattice()})),
        pingLine(4),
    };
    const std::vector<std::string> replies =
        service_.processBatch(lines);
    ASSERT_EQ(replies.size(), lines.size());
    // Every in-flight request gets a reply, in input order, and the
    // drain flag is raised for the server loop to act on.
    for (size_t i = 0; i < replies.size(); ++i) {
        EXPECT_TRUE(isOk(replies[i])) << replies[i];
        EXPECT_EQ(response(replies[i]).find("id")->asInt(),
                  static_cast<int64_t>(i + 1));
    }
    EXPECT_TRUE(service_.shutdownRequested());
}

TEST_F(ServeProtocolTest, ErrorsDoNotPoisonTheBatch)
{
    // One bad line in a window must not affect its neighbours.
    const std::vector<std::string> lines = {
        evaluateLine(1, kKernel, JsonValue::array({onLattice()})),
        "garbage{",
        evaluateLine(3, kKernel, JsonValue::array({onLattice()})),
    };
    const std::vector<std::string> replies =
        service_.processBatch(lines);
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_TRUE(isOk(replies[0]));
    EXPECT_EQ(errorCode(replies[1]), "invalid_argument");
    EXPECT_TRUE(isOk(replies[2]));
    expectStillServing();
}

TEST_F(ServeProtocolTest, EvaluateResultShape)
{
    const std::string reply = service_.processLine(
        evaluateLine(11, kKernel, JsonValue::array({onLattice()})));
    ASSERT_TRUE(isOk(reply)) << reply;
    const JsonValue resp = response(reply);
    EXPECT_EQ(resp.find("verb")->asString(), "evaluate");
    const JsonValue *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue *rows = result->find("results");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->asArray().size(), 1u);
    const JsonValue &row = rows->asArray()[0];
    for (const char *key : {"config", "time_s", "power_w",
                            "card_energy_j", "ed2"})
        EXPECT_NE(row.find(key), nullptr) << key;
    EXPECT_GT(row.find("time_s")->asDouble(), 0.0);
}

TEST_F(ServeProtocolTest, GovernSessionLifecycle)
{
    auto govern = [&](int id, const char *extraKey,
                      JsonValue extraVal) {
        JsonValue req = JsonValue::object({
            {"schema", JsonValue(kRequestSchema)},
            {"id", JsonValue(id)},
            {"verb", JsonValue("govern")},
            {"session", JsonValue("s1")},
            {"governor", JsonValue("baseline")},
            {"kernel", JsonValue(kKernel)},
            {"iteration", JsonValue(0)},
        });
        if (extraKey != nullptr)
            req.set(extraKey, std::move(extraVal));
        return service_.processLine(req.dump());
    };

    EXPECT_TRUE(isOk(govern(1, nullptr, JsonValue())));
    EXPECT_EQ(service_.sessionCount(), 1u);

    // Re-addressing the session under a different governor name is a
    // state error, not a session swap.
    JsonValue req = JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"id", JsonValue(2)},
        {"verb", JsonValue("govern")},
        {"session", JsonValue("s1")},
        {"governor", JsonValue("oracle")},
        {"kernel", JsonValue(kKernel)},
    });
    EXPECT_EQ(errorCode(service_.processLine(req.dump())),
              "failed_precondition");

    EXPECT_TRUE(isOk(govern(3, "end", JsonValue(true))));
    EXPECT_EQ(service_.sessionCount(), 0u);
    expectStillServing();
}

} // namespace
