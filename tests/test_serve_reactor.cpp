/**
 * @file
 * Reactor lifecycle and containment tests: the daemon must keep
 * serving every well-behaved connection no matter what any single
 * client does. Covered here, each over a real in-process Server:
 *
 *  - slow-client framing: a request dribbled one byte at a time and a
 *    response read one byte at a time are handled identically to
 *    whole-line I/O, on both the Unix-domain and TCP transports;
 *  - idle-timeout eviction: a silent connection is closed, counted,
 *    and the listener keeps accepting;
 *  - abrupt disconnect mid-batch: a client that vanishes while its
 *    request is queued in an open coalescing window costs nothing but
 *    a disconnect tick — co-batched clients get their replies;
 *  - write backpressure: a client that requests megabytes and never
 *    reads is shed at the buffer cap, alone;
 *  - --max-connections: connects past the cap get one structured
 *    resource_exhausted reply, existing connections keep working.
 *
 * The transport counters these paths tick are asserted through the
 * public `stats` verb, the same way an operator would see them.
 */

#include "harmonia/serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harmonia/serve/json.hh"
#include "harmonia/serve/protocol.hh"
#include "harmonia/serve/service.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

void
setRecvTimeout(int fd)
{
    timeval tv;
    tv.tv_sec = 20; // A hung read fails the test instead of the run.
    tv.tv_usec = 0;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int
connectUnix(const std::string &path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    setRecvTimeout(fd);
    return fd;
}

int
connectTcp(int port)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setRecvTimeout(fd);
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readLine(int fd, std::string &carry, std::string &line)
{
    while (true) {
        const size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char buf[8192];
        const ssize_t n = read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        carry.append(buf, static_cast<size_t>(n));
    }
}

std::string
pingLine(const std::string &id)
{
    return std::string("{\"schema\":\"") + kRequestSchema +
           "\",\"id\":\"" + id + "\",\"verb\":\"ping\"}\n";
}

std::string
evaluateAllLine(const std::string &id, const std::string &kernel)
{
    return std::string("{\"schema\":\"") + kRequestSchema +
           "\",\"id\":\"" + id +
           "\",\"verb\":\"evaluate\",\"kernel\":\"" + kernel +
           "\",\"iteration\":0,\"configs\":\"all\"}\n";
}

/** One blocking request/response round trip on @p fd. */
bool
roundTrip(int fd, const std::string &request, std::string &reply)
{
    std::string carry;
    return sendAll(fd, request) && readLine(fd, carry, reply);
}

bool
replyOk(const std::string &reply)
{
    const Result<JsonValue> doc = parseJson(reply);
    if (!doc.ok())
        return false;
    const JsonValue *ok = doc.value().find("ok");
    return ok != nullptr && ok->isBool() && ok->asBool();
}

std::string
replyErrorCode(const std::string &reply)
{
    const Result<JsonValue> doc = parseJson(reply);
    if (!doc.ok())
        return "";
    const JsonValue *error = doc.value().find("error");
    if (error == nullptr)
        return "";
    const JsonValue *code = error->find("code");
    return code != nullptr && code->isString() ? code->asString()
                                               : "";
}

/** Fetch a transport counter via the public stats verb on @p fd. */
int64_t
transportCounter(int fd, const std::string &key)
{
    std::string reply;
    if (!roundTrip(fd,
                   std::string("{\"schema\":\"") + kRequestSchema +
                       "\",\"id\":\"s\",\"verb\":\"stats\"}\n",
                   reply))
        return -1;
    const Result<JsonValue> doc = parseJson(reply);
    if (!doc.ok())
        return -1;
    const JsonValue *node = doc.value().find("result");
    for (const char *step : {"metrics", "transport"})
        node = node != nullptr ? node->find(step) : nullptr;
    node = node != nullptr ? node->find(key) : nullptr;
    return node != nullptr && node->isInt() ? node->asInt() : -1;
}

/**
 * An in-process daemon: Service + Server on a thread, listening on
 * both a fresh Unix socket and an ephemeral TCP port. stop() shuts it
 * down via the protocol, retrying while the connection cap is still
 * occupied by recently-closed peers.
 */
class Reactor
{
  public:
    explicit Reactor(ServerOptions sopt, int jobs = 1)
    {
        ServiceOptions svc;
        svc.jobs = jobs;
        service_ = std::make_unique<Service>(svc);
        sockPath_ = "/tmp/harmonia_reactor_" +
                    std::to_string(getpid()) + "_" +
                    std::to_string(instance_++) + ".sock";
        sopt.socketPath = sockPath_;
        if (sopt.tcpBind.empty())
            sopt.tcpBind = "127.0.0.1:0";
        server_ = std::make_unique<Server>(*service_, sopt);
        cerrBuf_ = std::cerr.rdbuf(sink_.rdbuf());
        startOk_ = server_->start().ok();
        if (startOk_)
            thread_ = std::thread([this] { server_->run(); });
        else
            std::cerr.rdbuf(cerrBuf_);
    }

    ~Reactor() { stop(); }

    bool ok() const { return startOk_; }
    const std::string &socketPath() const { return sockPath_; }
    int tcpPort() const { return server_->tcpPort(); }

    void stop()
    {
        if (!thread_.joinable())
            return;
        for (int attempt = 0; attempt < 50; ++attempt) {
            const int fd = connectUnix(sockPath_);
            if (fd >= 0) {
                std::string reply;
                const bool sent = roundTrip(
                    fd,
                    std::string("{\"schema\":\"") + kRequestSchema +
                        "\",\"id\":\"bye\",\"verb\":\"shutdown\"}\n",
                    reply);
                close(fd);
                if (sent && replyOk(reply))
                    break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        thread_.join();
        std::cerr.rdbuf(cerrBuf_);
    }

  private:
    static int instance_;
    std::unique_ptr<Service> service_;
    std::unique_ptr<Server> server_;
    std::string sockPath_;
    std::thread thread_;
    std::ostringstream sink_;
    std::streambuf *cerrBuf_ = nullptr;
    bool startOk_ = false;
};

int Reactor::instance_ = 0;

std::string
firstKernelId()
{
    return standardSuite().front().kernels.front().id();
}

// A request dribbled one byte per write() and a response read one
// byte per read() must behave exactly like whole-line I/O — framing
// lives above the transport. Exercised on both socket transports.
TEST(ServeReactor, SlowClientFramingBothTransports)
{
    Reactor reactor(ServerOptions{});
    ASSERT_TRUE(reactor.ok());

    const std::string request =
        pingLine("slow") + evaluateAllLine("ev", firstKernelId());
    for (const bool tcp : {false, true}) {
        SCOPED_TRACE(tcp ? "tcp" : "unix");
        const int fd = tcp ? connectTcp(reactor.tcpPort())
                           : connectUnix(reactor.socketPath());
        ASSERT_GE(fd, 0);

        // Dribble the two requests a byte at a time.
        for (const char byte : request)
            ASSERT_TRUE(sendAll(fd, std::string(1, byte)));

        // Read the replies a byte at a time, splitting mid-line.
        std::string stream;
        int newlines = 0;
        while (newlines < 2) {
            char byte = 0;
            const ssize_t n = read(fd, &byte, 1);
            if (n < 0 && errno == EINTR)
                continue;
            ASSERT_GT(n, 0);
            stream += byte;
            if (byte == '\n')
                ++newlines;
        }
        const size_t nl = stream.find('\n');
        const std::string ping = stream.substr(0, nl);
        const std::string eval =
            stream.substr(nl + 1, stream.size() - nl - 2);
        EXPECT_TRUE(replyOk(ping)) << ping;
        EXPECT_TRUE(replyOk(eval)) << eval.substr(0, 200);
        close(fd);
    }
}

// A connection with no traffic past the idle timeout is evicted and
// counted; the daemon keeps serving new connections.
TEST(ServeReactor, IdleTimeoutEvictsSilentConnection)
{
    ServerOptions sopt;
    sopt.idleTimeoutMillis = 100;
    Reactor reactor(sopt);
    ASSERT_TRUE(reactor.ok());

    const int idle = connectTcp(reactor.tcpPort());
    ASSERT_GE(idle, 0);
    std::string reply;
    ASSERT_TRUE(roundTrip(idle, pingLine("a"), reply));
    EXPECT_TRUE(replyOk(reply));

    // Go silent; the server must close its end.
    std::string carry, line;
    EXPECT_FALSE(readLine(idle, carry, line));
    close(idle);

    const int fresh = connectUnix(reactor.socketPath());
    ASSERT_GE(fresh, 0);
    ASSERT_TRUE(roundTrip(fresh, pingLine("b"), reply));
    EXPECT_TRUE(replyOk(reply));
    EXPECT_GE(transportCounter(fresh, "idle_timeouts"), 1);
    close(fresh);
}

// A client that disconnects while its request sits in an open
// coalescing window costs a disconnect tick and nothing else: the
// co-batched client still gets its reply.
TEST(ServeReactor, AbruptDisconnectMidBatchContained)
{
    ServerOptions sopt;
    sopt.coalesceMicros = 100000; // A wide window the batch waits in.
    Reactor reactor(sopt);
    ASSERT_TRUE(reactor.ok());

    const std::string kernel = firstKernelId();
    const int ghost = connectTcp(reactor.tcpPort());
    ASSERT_GE(ghost, 0);
    const int survivor = connectTcp(reactor.tcpPort());
    ASSERT_GE(survivor, 0);

    // The ghost's request enters the window, then the ghost vanishes.
    ASSERT_TRUE(sendAll(ghost, evaluateAllLine("ghost", kernel)));
    close(ghost);

    ASSERT_TRUE(sendAll(survivor, evaluateAllLine("kept", kernel)));
    std::string carry, reply;
    ASSERT_TRUE(readLine(survivor, carry, reply));
    EXPECT_TRUE(replyOk(reply)) << reply.substr(0, 200);

    EXPECT_GE(transportCounter(survivor, "disconnects"), 1);
    close(survivor);
}

// A connection that requests far more output than it reads is shed at
// the write-buffer cap — alone; other connections never notice.
TEST(ServeReactor, BackpressureShedsOnlyTheStalledReader)
{
    ServerOptions sopt;
    sopt.maxWriteBufferBytes = 1024;
    Reactor reactor(sopt);
    ASSERT_TRUE(reactor.ok());

    const std::string kernel = firstKernelId();
    const int hog = connectUnix(reactor.socketPath());
    ASSERT_GE(hog, 0);

    // Request ~megabytes of full-lattice responses and never read:
    // the kernel socket buffer fills, the server-side buffer hits the
    // cap, the connection is shed.
    std::string burst;
    for (int i = 0; i < 16; ++i)
        burst += evaluateAllLine("hog" + std::to_string(i), kernel);
    ASSERT_TRUE(sendAll(hog, burst));

    // The responses total ~1.8 MB against a ~200 KiB socket buffer
    // and a 1 KiB server-side cap; while the hog reads nothing, the
    // flush hits EAGAIN and the shed must fire. Watch for it through
    // a second connection — which the shed must not disturb.
    const int fresh = connectUnix(reactor.socketPath());
    ASSERT_GE(fresh, 0);
    int64_t sheds = 0;
    for (int i = 0; i < 600 && sheds < 1; ++i) {
        sheds = transportCounter(fresh, "backpressure_sheds");
        if (sheds < 1)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    EXPECT_GE(sheds, 1);

    // The hog's stream ends early: the socket buffer's worth of
    // responses at most, never the full set.
    std::string carry, line;
    size_t linesSeen = 0;
    while (readLine(hog, carry, line))
        ++linesSeen;
    EXPECT_LT(linesSeen, 16u);
    close(hog);

    std::string reply;
    ASSERT_TRUE(roundTrip(fresh, pingLine("after"), reply));
    EXPECT_TRUE(replyOk(reply));
    close(fresh);
}

// Connects past --max-connections get one structured
// resource_exhausted reply and a close; established connections are
// untouched and the slot frees once a peer departs.
TEST(ServeReactor, MaxConnectionsRejectsWithStructuredError)
{
    ServerOptions sopt;
    sopt.maxConnections = 2;
    Reactor reactor(sopt);
    ASSERT_TRUE(reactor.ok());

    const int a = connectUnix(reactor.socketPath());
    const int b = connectTcp(reactor.tcpPort());
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    std::string reply;
    ASSERT_TRUE(roundTrip(a, pingLine("a"), reply));
    ASSERT_TRUE(roundTrip(b, pingLine("b"), reply));

    const int over = connectTcp(reactor.tcpPort());
    ASSERT_GE(over, 0);
    std::string carry, line;
    ASSERT_TRUE(readLine(over, carry, line));
    EXPECT_EQ(replyErrorCode(line), "resource_exhausted") << line;
    EXPECT_FALSE(readLine(over, carry, line)); // Then closed.
    close(over);

    // The established pair is unaffected, and the rejection counted.
    ASSERT_TRUE(roundTrip(a, pingLine("a2"), reply));
    EXPECT_TRUE(replyOk(reply));
    EXPECT_GE(transportCounter(b, "rejected"), 1);
    close(a);
    close(b);
}

} // namespace
