/**
 * @file
 * Differential scalar-vs-SIMD equivalence harness.
 *
 * The SIMD-batched lattice path (GpuDevice::runLattice with simd set,
 * LatticeEvaluator::evaluateBatchAtInto, and the batched bandwidth
 * resolvers in MemorySystem) promises results *bitwise identical* to
 * the scalar reference path — not merely close (docs/MODEL.md §9).
 * These tests pin that contract:
 *
 *  - the full workload suite across the whole 448-point lattice,
 *    scalar vs SIMD, every double compared at the bit level;
 *  - seeded fuzzing of off-canonical batches (random subsets,
 *    duplicates, shuffles, single points), which exercises the
 *    indexed-gather fallback rather than the fused canonical gather;
 *  - scheduling independence of the chunked parallel SIMD path;
 *  - the batched crossing-cap bandwidth resolvers against per-lane
 *    and per-slab references, including lanes placed exactly on the
 *    saturation thresholds the batch dedup rules key off.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "harmonia/common/thread_pool.hh"
#include "harmonia/core/sweep.hh"
#include "harmonia/dvfs/tunables.hh"
#include "harmonia/memsys/memory_system.hh"
#include "harmonia/sim/gpu_device.hh"
#include "sim/lattice_evaluator.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

/** Bit pattern of a double: distinguishes -0.0/0.0 and NaN payloads. */
uint64_t
bits(double x)
{
    return std::bit_cast<uint64_t>(x);
}

#define EXPECT_SAME_BITS(a, b)                                          \
    EXPECT_EQ(bits(a), bits(b)) << #a " differs from " #b " at " << ctx

void
expectSameCounters(const CounterSet &a, const CounterSet &b,
                   const std::string &ctx)
{
    EXPECT_SAME_BITS(a.valuBusy, b.valuBusy);
    EXPECT_SAME_BITS(a.valuUtilization, b.valuUtilization);
    EXPECT_SAME_BITS(a.memUnitBusy, b.memUnitBusy);
    EXPECT_SAME_BITS(a.memUnitStalled, b.memUnitStalled);
    EXPECT_SAME_BITS(a.writeUnitStalled, b.writeUnitStalled);
    EXPECT_SAME_BITS(a.l2CacheHit, b.l2CacheHit);
    EXPECT_SAME_BITS(a.icActivity, b.icActivity);
    EXPECT_SAME_BITS(a.normVgpr, b.normVgpr);
    EXPECT_SAME_BITS(a.normSgpr, b.normSgpr);
    EXPECT_SAME_BITS(a.valuInsts, b.valuInsts);
    EXPECT_SAME_BITS(a.vfetchInsts, b.vfetchInsts);
    EXPECT_SAME_BITS(a.vwriteInsts, b.vwriteInsts);
    EXPECT_SAME_BITS(a.offChipBytes, b.offChipBytes);
}

void
expectSameTiming(const KernelTiming &a, const KernelTiming &b,
                 const std::string &ctx)
{
    EXPECT_SAME_BITS(a.execTime, b.execTime);
    EXPECT_SAME_BITS(a.computeTime, b.computeTime);
    EXPECT_SAME_BITS(a.l2Time, b.l2Time);
    EXPECT_SAME_BITS(a.memTime, b.memTime);
    EXPECT_SAME_BITS(a.launchOverhead, b.launchOverhead);
    EXPECT_SAME_BITS(a.busyTime, b.busyTime);
    EXPECT_EQ(a.occupancy.wavesPerSimd, b.occupancy.wavesPerSimd) << ctx;
    EXPECT_EQ(a.occupancy.wavesPerCu, b.occupancy.wavesPerCu) << ctx;
    EXPECT_EQ(a.occupancy.workgroupsPerCu, b.occupancy.workgroupsPerCu)
        << ctx;
    EXPECT_SAME_BITS(a.occupancy.occupancy, b.occupancy.occupancy);
    EXPECT_EQ(a.occupancy.limiter, b.occupancy.limiter) << ctx;
    EXPECT_SAME_BITS(a.l2HitRate, b.l2HitRate);
    EXPECT_SAME_BITS(a.requestedBytes, b.requestedBytes);
    EXPECT_SAME_BITS(a.offChipBytes, b.offChipBytes);
    EXPECT_SAME_BITS(a.bandwidth.effectiveBps, b.bandwidth.effectiveBps);
    EXPECT_SAME_BITS(a.bandwidth.latency, b.bandwidth.latency);
    EXPECT_EQ(a.bandwidth.limiter, b.bandwidth.limiter) << ctx;
    expectSameCounters(a.counters, b.counters, ctx);
}

void
expectSameResult(const KernelResult &a, const KernelResult &b,
                 const std::string &ctx)
{
    expectSameTiming(a.timing, b.timing, ctx);
    EXPECT_SAME_BITS(a.power.gpu.cuDynamic, b.power.gpu.cuDynamic);
    EXPECT_SAME_BITS(a.power.gpu.uncoreDynamic,
                     b.power.gpu.uncoreDynamic);
    EXPECT_SAME_BITS(a.power.gpu.leakage, b.power.gpu.leakage);
    EXPECT_SAME_BITS(a.power.mem.background, b.power.mem.background);
    EXPECT_SAME_BITS(a.power.mem.activatePrecharge,
                     b.power.mem.activatePrecharge);
    EXPECT_SAME_BITS(a.power.mem.readWrite, b.power.mem.readWrite);
    EXPECT_SAME_BITS(a.power.mem.termination, b.power.mem.termination);
    EXPECT_SAME_BITS(a.power.mem.phy, b.power.mem.phy);
    EXPECT_SAME_BITS(a.power.other, b.power.other);
    EXPECT_SAME_BITS(a.cardEnergy, b.cardEnergy);
    EXPECT_SAME_BITS(a.gpuEnergy, b.gpuEnergy);
    EXPECT_SAME_BITS(a.memEnergy, b.memEnergy);
}

/**
 * Run @p configs through runLattice with the SIMD kernels and with
 * the scalar reference, and require bitwise-identical results.
 * @p pool, when given, is handed only to the SIMD run so the chunked
 * parallel schedule is compared against the serial scalar loop.
 */
void
expectSimdMatchesScalar(const KernelProfile &k, const KernelPhase &phase,
                        const std::vector<HardwareConfig> &configs,
                        const std::string &ctxBase,
                        ThreadPool *pool = nullptr)
{
    std::vector<KernelResult> scalar(configs.size());
    std::vector<KernelResult> simd(configs.size());
    device().runLattice(k, phase, configs, scalar.data(), nullptr, false);
    device().runLattice(k, phase, configs, simd.data(), pool, true);
    for (size_t i = 0; i < configs.size(); ++i)
        expectSameResult(simd[i], scalar[i],
                         ctxBase + " @ " + configs[i].str());
}

void
expectSameBandwidth(const BandwidthResult &a, const BandwidthResult &b,
                    const std::string &ctx)
{
    EXPECT_SAME_BITS(a.effectiveBps, b.effectiveBps);
    EXPECT_SAME_BITS(a.latency, b.latency);
    EXPECT_EQ(a.limiter, b.limiter) << ctx;
}

} // namespace

// The headline guarantee: every kernel of every suite application, at
// representative iterations' phases, produces the same bits through
// the SIMD-batched lattice path as through the scalar reference path,
// across the full canonical 448-point lattice (fused-gather route).
TEST(SimdEquivalence, FullSuiteBitwiseIdenticalToScalar)
{
    const std::vector<HardwareConfig> configs =
        device().space().allConfigs();
    ASSERT_EQ(configs.size(), 448u);

    for (const Application &app : standardSuite()) {
        for (const KernelProfile &k : app.kernels) {
            for (int iter : {0, 1, app.iterations - 1}) {
                expectSimdMatchesScalar(
                    k, k.phase(iter), configs,
                    k.id() + "#" + std::to_string(iter));
            }
        }
    }
}

// Off-canonical batches: random subsets with duplicates, shuffled
// full lattices, and odd batch sizes, all fed through the
// indexed-gather route (the canonical detection must reject them and
// the result must still be bitwise scalar-identical). Seeded via the
// sweep RNG substream helper so failures replay exactly.
TEST(SimdEquivalence, FuzzedBatchesBitwiseIdenticalToScalar)
{
    const std::vector<HardwareConfig> all = device().space().allConfigs();
    const std::vector<Application> suite = standardSuite();

    constexpr int kTrials = 24;
    for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng = sweepSubstream(0x51D0E01ull, trial);
        const Application &app =
            suite[rng.uniformInt(0, suite.size() - 1)];
        const KernelProfile &k =
            app.kernels[rng.uniformInt(0, app.kernels.size() - 1)];
        const int iter = rng.uniformInt(0, app.iterations - 1);

        std::vector<HardwareConfig> batch;
        if (trial % 4 == 0) {
            // Full lattice, Fisher-Yates shuffled: canonical size but
            // non-canonical order.
            batch = all;
            for (size_t i = batch.size() - 1; i > 0; --i)
                std::swap(batch[i], batch[rng.uniformInt(0, i)]);
        } else {
            // Random multiset of lattice points, including sizes that
            // leave partial tail chunks and partial vector packs.
            const size_t n = rng.uniformInt(1, 600);
            batch.reserve(n);
            for (size_t i = 0; i < n; ++i)
                batch.push_back(all[rng.uniformInt(0, all.size() - 1)]);
        }

        expectSimdMatchesScalar(k, k.phase(iter), batch,
                                k.id() + "#" + std::to_string(iter) +
                                    " fuzz trial " +
                                    std::to_string(trial));
    }
}

// Degenerate batch shapes: a single point, one chunk of duplicates of
// the same point, and a chunk-straddling batch. Also anchors the SIMD
// result to the naive per-config GpuDevice::run, not just the scalar
// lattice path.
TEST(SimdEquivalence, SinglePointAndDuplicateBatches)
{
    const GpuDevice &dev = device();
    const Application app = makeDeviceMemory();
    const KernelProfile &k = app.kernels.front();
    const KernelPhase phase = k.phase(0);

    const HardwareConfig lo = dev.space().minConfig();
    const HardwareConfig hi = dev.space().maxConfig();

    std::vector<std::vector<HardwareConfig>> batches;
    batches.push_back({lo});
    batches.push_back({hi});
    batches.push_back(
        std::vector<HardwareConfig>(LatticeEvaluator::kBatchChunk, lo));
    // One full chunk plus a 1-lane tail, alternating two points.
    std::vector<HardwareConfig> straddle;
    for (size_t i = 0; i < LatticeEvaluator::kBatchChunk + 1; ++i)
        straddle.push_back(i % 2 == 0 ? lo : hi);
    batches.push_back(straddle);

    for (const std::vector<HardwareConfig> &batch : batches) {
        expectSimdMatchesScalar(k, phase, batch,
                                k.id() + " degenerate batch of " +
                                    std::to_string(batch.size()));
        std::vector<KernelResult> simd(batch.size());
        dev.runLattice(k, phase, batch, simd.data(), nullptr, true);
        for (size_t i = 0; i < batch.size(); ++i) {
            const KernelResult naive = dev.run(k, phase, batch[i]);
            expectSameResult(simd[i], naive,
                             k.id() + " vs naive @ " + batch[i].str());
        }
    }
}

// Scheduling independence: the chunked SIMD path under a thread pool
// must produce the same bytes as both the serial SIMD loop and the
// serial scalar reference.
TEST(SimdEquivalence, ParallelSimdMatchesSerial)
{
    const GpuDevice &dev = device();
    const std::vector<HardwareConfig> configs = dev.space().allConfigs();
    const Application app = makeXsbench();
    ThreadPool pool(4);

    for (const KernelProfile &k : app.kernels) {
        const KernelPhase phase = k.phase(0);
        expectSimdMatchesScalar(k, phase, configs, k.id() + " pooled",
                                &pool);
        std::vector<KernelResult> serial(configs.size());
        std::vector<KernelResult> pooled(configs.size());
        dev.runLattice(k, phase, configs, serial.data(), nullptr, true);
        dev.runLattice(k, phase, configs, pooled.data(), &pool, true);
        for (size_t i = 0; i < configs.size(); ++i)
            expectSameResult(pooled[i], serial[i],
                             k.id() + " pooled vs serial @ " +
                                 configs[i].str());
    }
}

// The batched crossing-cap solver, lane by lane: SIMD batch vs scalar
// batch vs the single-lane call, over a grid of demand levels and
// crossing caps that includes every saturation-threshold boundary the
// dedup rules depend on (cap exactly at the supply ceiling, one ULP
// either side, zero demand, and saturating demand).
TEST(SimdEquivalence, LaneResolverMatchesPerLaneCalls)
{
    const MemorySystem &ms = device().engine().memorySystem();
    const ConfigSpace &space = device().space();

    MemDemand demand;
    MemDemand streaming;
    streaming.requestBytes = 128.0;
    streaming.rowHitFraction = 0.9;
    streaming.streamEfficiency = 1.0;

    for (const MemDemand &d : {demand, streaming}) {
        for (const int mem : space.values(Tunable::MemFreq)) {
            const double peak = ms.peakBandwidth(mem);
            const double ceiling = d.streamEfficiency * peak;

            std::vector<double> outstanding;
            std::vector<double> caps;
            const double demandLevels[] = {0.0, 1.0, 7.5, 64.0, 640.0,
                                           1e6};
            const double capLevels[] = {
                0.05 * peak,
                0.5 * peak,
                std::nextafter(ceiling, 0.0),
                ceiling,
                std::nextafter(ceiling, 2.0 * ceiling),
                peak,
                2.0 * peak,
                ms.crossing().maxBandwidth(space.minValue(
                    Tunable::ComputeFreq)),
                ms.crossing().maxBandwidth(space.maxValue(
                    Tunable::ComputeFreq)),
            };
            for (const double o : demandLevels) {
                for (const double c : capLevels) {
                    outstanding.push_back(o);
                    caps.push_back(c);
                }
            }
            // Duplicate the first few lanes so the dedup rules see
            // exact repeats mid-batch.
            for (size_t i = 0; i < 5; ++i) {
                outstanding.push_back(outstanding[i]);
                caps.push_back(caps[i]);
            }

            const size_t lanes = outstanding.size();
            std::vector<BandwidthResult> simd(lanes);
            std::vector<BandwidthResult> scalar(lanes);
            ms.resolveLanesWithCrossingCap(mem, d, lanes,
                                           outstanding.data(),
                                           caps.data(), simd.data(),
                                           true);
            ms.resolveLanesWithCrossingCap(mem, d, lanes,
                                           outstanding.data(),
                                           caps.data(), scalar.data(),
                                           false);
            for (size_t l = 0; l < lanes; ++l) {
                const std::string ctx =
                    "mem " + std::to_string(mem) + " lane " +
                    std::to_string(l) + " (outstanding " +
                    std::to_string(outstanding[l]) + ", cap " +
                    std::to_string(caps[l]) + ")";
                MemDemand lane = d;
                lane.outstandingRequests = outstanding[l];
                const BandwidthResult ref =
                    ms.resolveWithCrossingCap(mem, lane, caps[l]);
                expectSameBandwidth(simd[l], scalar[l], ctx);
                expectSameBandwidth(simd[l], ref, ctx);
            }
        }
    }
}

// The cross-slab resolver: staging all memory frequencies' lane
// batches into one interleaved bisection pass must reproduce the
// per-slab batched results (and hence the per-lane scalar reference)
// bit for bit, including slabs whose lane counts leave partial packs.
TEST(SimdEquivalence, SlabResolverMatchesPerSlabCalls)
{
    const MemorySystem &ms = device().engine().memorySystem();
    const ConfigSpace &space = device().space();
    const std::vector<int> mems = space.values(Tunable::MemFreq);

    MemDemand demand;
    Rng rng = sweepSubstream(0xCAB5ull, 7);

    std::vector<std::vector<double>> outstanding(mems.size());
    std::vector<std::vector<double>> caps(mems.size());
    std::vector<std::vector<BandwidthResult>> slabOut(mems.size());
    std::vector<std::vector<BandwidthResult>> refOut(mems.size());
    std::vector<MemorySystem::SlabLaneRequest> slabs(mems.size());

    for (size_t s = 0; s < mems.size(); ++s) {
        // Lane counts 1..17: exercises single-lane slabs, partial
        // packs, and multi-pack slabs in one call.
        const size_t lanes = 1 + (s * 5) % 17;
        const double peak = ms.peakBandwidth(mems[s]);
        for (size_t l = 0; l < lanes; ++l) {
            outstanding[s].push_back(rng.uniform(0.0, 2000.0));
            caps[s].push_back(rng.uniform(0.05 * peak, 2.5 * peak));
        }
        slabOut[s].resize(lanes);
        refOut[s].resize(lanes);
        slabs[s] = {static_cast<double>(mems[s]), lanes,
                    outstanding[s].data(), caps[s].data(),
                    slabOut[s].data()};
    }

    ms.resolveSlabLanesWithCrossingCap(slabs.data(), slabs.size(),
                                       demand);

    for (size_t s = 0; s < mems.size(); ++s) {
        ms.resolveLanesWithCrossingCap(
            slabs[s].memFreqMhz, demand, slabs[s].lanes,
            outstanding[s].data(), caps[s].data(), refOut[s].data(),
            true);
        for (size_t l = 0; l < slabs[s].lanes; ++l) {
            const std::string ctx = "slab " + std::to_string(mems[s]) +
                                    " lane " + std::to_string(l);
            expectSameBandwidth(slabOut[s][l], refOut[s][l], ctx);
            MemDemand lane = demand;
            lane.outstandingRequests = outstanding[s][l];
            const BandwidthResult single = ms.resolveWithCrossingCap(
                slabs[s].memFreqMhz, lane, caps[s][l]);
            expectSameBandwidth(slabOut[s][l], single, ctx);
        }
    }
}
