/**
 * @file
 * Unit tests for the portable SIMD shim (src/common/simd.hh).
 *
 * This TU is compiled with HARMONIA_SIMD_SOURCE_OPTIONS — the same
 * per-source flags as the lattice kernels that include the shim — so
 * it tests the exact VDouble backend and width the model runs with.
 * The properties pinned here are the ones the bitwise determinism
 * contract (docs/MODEL.md §9) rests on: every lane of every operation
 * is the IEEE-754 exactly-rounded scalar expression, loadN pads tail
 * lanes by replicating the last valid element, and storeN never
 * touches lanes past the requested count.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/simd.hh"

// select() is a hidden friend of VMask — found via ADL on the
// argument types, so no using-declaration for it.
using harmonia::simd::VDouble;
using harmonia::simd::VMask;
using harmonia::simd::vmax;
using harmonia::simd::vmin;

namespace
{

constexpr size_t W = VDouble::width;

uint64_t
bits(double x)
{
    return std::bit_cast<uint64_t>(x);
}

#define EXPECT_SAME_BITS(a, b)                                          \
    EXPECT_EQ(bits(a), bits(b)) << #a " differs from " #b " at lane "   \
                                << i

/** Deterministic lane values that exercise sign, scale, and rounding:
 * none are exactly representable products/quotients of each other. */
void
fillOperands(double *a, double *b)
{
    for (size_t i = 0; i < W; ++i) {
        a[i] = std::ldexp(1.0 + 0.37 * i, static_cast<int>(i % 5) - 2) *
               (i % 2 == 0 ? 1.0 : -1.0);
        b[i] = std::ldexp(0.1 + 0.73 * i, static_cast<int>(i % 3) - 1);
    }
}

} // namespace

TEST(SimdShim, WidthIsAtLeastOne)
{
    static_assert(W >= 1, "VDouble must have at least one lane");
    EXPECT_GE(W, 1u);
}

TEST(SimdShim, LoadStoreRoundTripIsBitExact)
{
    double src[W], dst[W];
    // Include signed zero and a subnormal: a round trip must preserve
    // bit patterns, not just values.
    for (size_t i = 0; i < W; ++i)
        src[i] = 1.5 * i - 2.25;
    src[0] = -0.0;
    if (W > 1)
        src[1] = std::numeric_limits<double>::denorm_min();

    const VDouble v = VDouble::load(src);
    for (size_t i = 0; i < W; ++i)
        EXPECT_SAME_BITS(v[i], src[i]);
    v.store(dst);
    for (size_t i = 0; i < W; ++i)
        EXPECT_SAME_BITS(dst[i], src[i]);
}

TEST(SimdShim, BroadcastFillsEveryLane)
{
    const VDouble v(3.141592653589793);
    for (size_t i = 0; i < W; ++i)
        EXPECT_SAME_BITS(v[i], 3.141592653589793);
}

TEST(SimdShim, LoadNReplicatesLastElementIntoPadding)
{
    double src[W];
    for (size_t i = 0; i < W; ++i)
        src[i] = 10.0 + i;

    for (size_t n = 1; n <= W; ++n) {
        const VDouble v = VDouble::loadN(src, n);
        for (size_t i = 0; i < W; ++i) {
            const double expected = i < n ? src[i] : src[n - 1];
            EXPECT_SAME_BITS(v[i], expected);
        }
    }
}

TEST(SimdShim, StoreNLeavesTailLanesUntouched)
{
    double src[W];
    for (size_t i = 0; i < W; ++i)
        src[i] = 2.0 * i + 0.5;
    const VDouble v = VDouble::load(src);

    for (size_t n = 1; n <= W; ++n) {
        double dst[W];
        for (size_t i = 0; i < W; ++i)
            dst[i] = -777.25;
        v.storeN(dst, n);
        for (size_t i = 0; i < W; ++i) {
            const double expected = i < n ? src[i] : -777.25;
            EXPECT_SAME_BITS(dst[i], expected);
        }
    }
}

TEST(SimdShim, ArithmeticMatchesScalarBitwise)
{
    double a[W], b[W];
    fillOperands(a, b);
    const VDouble va = VDouble::load(a);
    const VDouble vb = VDouble::load(b);

    const VDouble sum = va + vb;
    const VDouble diff = va - vb;
    const VDouble prod = va * vb;
    const VDouble quot = va / vb;
    // A chained expression: if any op contracted into an FMA the
    // product's rounding step would disappear and the bits would
    // differ from the two-op scalar form.
    const VDouble chained = va * vb + va;

    for (size_t i = 0; i < W; ++i) {
        EXPECT_SAME_BITS(sum[i], a[i] + b[i]);
        EXPECT_SAME_BITS(diff[i], a[i] - b[i]);
        EXPECT_SAME_BITS(prod[i], a[i] * b[i]);
        EXPECT_SAME_BITS(quot[i], a[i] / b[i]);
        const double scalarProd = a[i] * b[i];
        EXPECT_SAME_BITS(chained[i], scalarProd + a[i]);
    }
}

TEST(SimdShim, MinMaxMatchScalarSemantics)
{
    double a[W], b[W];
    fillOperands(a, b);
    const double inf = std::numeric_limits<double>::infinity();
    a[0] = inf;
    b[W - 1] = -inf;

    const VDouble lo = vmin(VDouble::load(a), VDouble::load(b));
    const VDouble hi = vmax(VDouble::load(a), VDouble::load(b));
    for (size_t i = 0; i < W; ++i) {
        EXPECT_SAME_BITS(lo[i], b[i] < a[i] ? b[i] : a[i]);
        EXPECT_SAME_BITS(hi[i], a[i] < b[i] ? b[i] : a[i]);
    }
}

TEST(SimdShim, ComparisonsAreLaneWise)
{
    double a[W], b[W];
    for (size_t i = 0; i < W; ++i) {
        // Alternate strictly-less / equal / strictly-greater lanes so
        // >= and > disagree on the equal lanes.
        a[i] = static_cast<double>(i % 3);
        b[i] = 1.0;
    }
    const VDouble va = VDouble::load(a);
    const VDouble vb = VDouble::load(b);

    const VMask ge = va >= vb;
    const VMask gt = va > vb;
    const VMask both = ge && gt;
    for (size_t i = 0; i < W; ++i) {
        EXPECT_EQ(ge[i], a[i] >= b[i]) << "lane " << i;
        EXPECT_EQ(gt[i], a[i] > b[i]) << "lane " << i;
        EXPECT_EQ(both[i], (a[i] >= b[i]) && (a[i] > b[i]))
            << "lane " << i;
    }
}

TEST(SimdShim, SelectIsBranchlessPerLane)
{
    double a[W], b[W];
    fillOperands(a, b);
    // Distinguishable only at the bit level: select must move the
    // exact lane pattern, not a numerically-equal substitute.
    a[0] = 0.0;
    b[0] = -0.0;

    const VDouble va = VDouble::load(a);
    const VDouble vb = VDouble::load(b);
    const VMask m = va >= vb;

    const VDouble picked = select(m, va, vb);
    for (size_t i = 0; i < W; ++i) {
        const double expected = a[i] >= b[i] ? a[i] : b[i];
        EXPECT_SAME_BITS(picked[i], expected);
    }

    // All-true and all-false masks pass operands through unchanged.
    const VDouble allA = select(va >= va, va, vb);
    const VDouble allB = select(vb > vb, va, vb);
    for (size_t i = 0; i < W; ++i) {
        EXPECT_SAME_BITS(allA[i], a[i]);
        EXPECT_SAME_BITS(allB[i], b[i]);
    }
}
