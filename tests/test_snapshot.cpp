/**
 * @file
 * The durable evaluation-cache snapshot layer (src/serve/snapshot.hh):
 * the varint/XOR-delta codec must be bitwise lossless, the header/blob
 * file layout must reject every truncation and bit flip it is shown
 * (header damage at index time, blob damage at entry-decode time,
 * never a crash), version skew must come back as failed-precondition
 * (the "cold start, do not guess" signal), sections must stay
 * partitioned per device, the model fingerprint must move when the
 * model does, and a failed save must leave the previous snapshot file
 * byte-for-byte intact (temp file + atomic rename).
 *
 * Fuzz inputs are seeded through sweepSubstream so a failure
 * reproduces from the printed task index alone.
 */

#include "serve/snapshot.hh"

#include <bit>
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "harmonia/core/sweep.hh"
#include "harmonia/sim/device_registry.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

/** The default device and its lattice, built once: probe-running the
 * model is what makes these objects mildly expensive. */
struct Fixture
{
    GpuDevice device;
    ConfigSweep sweep;
    Fixture() : device(), sweep(device, SweepOptions{}) {}
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/** Real model output for @p kernelIdx at a few lattice points — the
 * codec is exercised on the bit patterns it actually stores. */
std::vector<KernelResult>
realResults(size_t kernelIdx, int iteration, size_t count)
{
    const std::vector<Application> suite = standardSuite();
    std::vector<const KernelProfile *> kernels;
    for (const Application &app : suite)
        for (const KernelProfile &k : app.kernels)
            kernels.push_back(&k);
    const KernelProfile &kernel =
        *kernels[kernelIdx % kernels.size()];
    const std::vector<HardwareConfig> &configs =
        fixture().sweep.configs();
    std::vector<KernelResult> results;
    for (size_t i = 0; i < count; ++i)
        results.push_back(fixture().device.run(
            kernel, iteration,
            configs[(i * 37) % configs.size()]));
    return results;
}

/** Bitwise equality of every serialized field. */
void
expectBitwiseEqual(const KernelResult &a, const KernelResult &b,
                   const std::string &what)
{
    auto bits = [](double v) { return std::bit_cast<uint64_t>(v); };
    EXPECT_EQ(bits(a.timing.execTime), bits(b.timing.execTime))
        << what;
    EXPECT_EQ(bits(a.timing.computeTime), bits(b.timing.computeTime))
        << what;
    EXPECT_EQ(bits(a.timing.memTime), bits(b.timing.memTime)) << what;
    EXPECT_EQ(a.timing.occupancy.wavesPerCu,
              b.timing.occupancy.wavesPerCu)
        << what;
    EXPECT_EQ(static_cast<int>(a.timing.occupancy.limiter),
              static_cast<int>(b.timing.occupancy.limiter))
        << what;
    EXPECT_EQ(bits(a.timing.l2HitRate), bits(b.timing.l2HitRate))
        << what;
    EXPECT_EQ(bits(a.timing.bandwidth.effectiveBps),
              bits(b.timing.bandwidth.effectiveBps))
        << what;
    EXPECT_EQ(static_cast<int>(a.timing.bandwidth.limiter),
              static_cast<int>(b.timing.bandwidth.limiter))
        << what;
    EXPECT_EQ(bits(a.timing.counters.valuBusy),
              bits(b.timing.counters.valuBusy))
        << what;
    EXPECT_EQ(bits(a.timing.counters.offChipBytes),
              bits(b.timing.counters.offChipBytes))
        << what;
    EXPECT_EQ(bits(a.power.gpu.cuDynamic), bits(b.power.gpu.cuDynamic))
        << what;
    EXPECT_EQ(bits(a.power.mem.termination),
              bits(b.power.mem.termination))
        << what;
    EXPECT_EQ(bits(a.power.other), bits(b.power.other)) << what;
    EXPECT_EQ(bits(a.cardEnergy), bits(b.cardEnergy)) << what;
    EXPECT_EQ(bits(a.gpuEnergy), bits(b.gpuEnergy)) << what;
    EXPECT_EQ(bits(a.memEnergy), bits(b.memEnergy)) << what;
}

/** A two-device snapshot with sparse, non-contiguous slot sets. */
Snapshot
sampleSnapshot()
{
    Snapshot snap;
    DeviceSection hd;
    hd.device = "hd7970";
    hd.fingerprint = 0x1234abcd5678ef01ull;
    hd.latticeSize =
        static_cast<uint32_t>(fixture().sweep.configs().size());
    for (int e = 0; e < 3; ++e) {
        SnapshotEntry entry;
        entry.kernel = "Kernel." + std::to_string(e);
        entry.iteration = e;
        const size_t points = 5 + 7 * static_cast<size_t>(e);
        entry.results = realResults(static_cast<size_t>(e), e, points);
        for (size_t i = 0; i < points; ++i)
            entry.slots.push_back(
                static_cast<uint32_t>(i * 11 + static_cast<size_t>(e)));
        hd.entries.push_back(std::move(entry));
    }
    snap.devices.push_back(std::move(hd));

    DeviceSection other;
    other.device = "other-device";
    other.fingerprint = 0xfeedface0badf00dull;
    other.latticeSize = 64;
    SnapshotEntry entry;
    entry.kernel = "Solo.Kernel";
    entry.iteration = 0;
    entry.results = realResults(7, 0, 4);
    entry.slots = {0, 9, 33, 63};
    other.entries.push_back(std::move(entry));
    snap.devices.push_back(std::move(other));
    return snap;
}

void
expectSnapshotsEqual(const Snapshot &a, const Snapshot &b)
{
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (size_t d = 0; d < a.devices.size(); ++d) {
        const DeviceSection &da = a.devices[d];
        const DeviceSection &db = b.devices[d];
        EXPECT_EQ(da.device, db.device);
        EXPECT_EQ(da.fingerprint, db.fingerprint);
        EXPECT_EQ(da.latticeSize, db.latticeSize);
        ASSERT_EQ(da.entries.size(), db.entries.size());
        for (size_t e = 0; e < da.entries.size(); ++e) {
            const SnapshotEntry &ea = da.entries[e];
            const SnapshotEntry &eb = db.entries[e];
            EXPECT_EQ(ea.kernel, eb.kernel);
            EXPECT_EQ(ea.iteration, eb.iteration);
            EXPECT_EQ(ea.slots, eb.slots);
            ASSERT_EQ(ea.results.size(), eb.results.size());
            for (size_t i = 0; i < ea.results.size(); ++i)
                expectBitwiseEqual(ea.results[i], eb.results[i],
                                   da.device + "/" + ea.kernel +
                                       " point " +
                                       std::to_string(i));
        }
    }
}

std::string
tmpPath(const std::string &stem)
{
    return "/tmp/harmonia_test_snapshot_" + stem + "." +
           std::to_string(static_cast<long>(getpid())) + ".snap";
}

} // namespace

// ---------------------------------------------------------------- wire

TEST(SnapshotWire, VarintRoundTrip)
{
    const uint64_t values[] = {0,
                               1,
                               0x7f,
                               0x80,
                               0x3fff,
                               0x4000,
                               0xffffffffull,
                               0x123456789abcdefull,
                               ~0ull};
    std::string buf;
    for (const uint64_t v : values)
        wire::putVarint(buf, v);
    std::string_view in = buf;
    for (const uint64_t v : values) {
        uint64_t got = 0;
        ASSERT_TRUE(wire::getVarint(in, &got));
        EXPECT_EQ(v, got);
    }
    EXPECT_TRUE(in.empty());
}

TEST(SnapshotWire, VarintRejectsTruncation)
{
    std::string buf;
    wire::putVarint(buf, ~0ull);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
        std::string_view in(buf.data(), cut);
        uint64_t got = 0;
        EXPECT_FALSE(wire::getVarint(in, &got)) << "cut " << cut;
    }
}

TEST(SnapshotWire, VarintRejectsOverlongEncoding)
{
    // Eleven continuation bytes cannot be a valid u64 varint.
    std::string buf(11, static_cast<char>(0x80));
    buf.push_back(0x01);
    std::string_view in = buf;
    uint64_t got = 0;
    EXPECT_FALSE(wire::getVarint(in, &got));
}

TEST(SnapshotWire, DeltaDoubleLanesAreLossless)
{
    // Pathological bit patterns, interleaved across two lanes the way
    // two fields of consecutive results would be.
    const double specials[] = {0.0,
                               -0.0,
                               1.0,
                               -1.0,
                               1e-308, // Denormal territory.
                               1e308,
                               3.141592653589793,
                               std::bit_cast<double>(~0ull)};
    std::string buf;
    wire::DeltaChain enc;
    for (const double a : specials) {
        for (const double b : specials) {
            enc.cursor = 0;
            wire::putDeltaDouble(buf, a, &enc);
            wire::putDeltaDouble(buf, b, &enc);
        }
    }
    std::string_view in = buf;
    wire::DeltaChain dec;
    for (const double a : specials) {
        for (const double b : specials) {
            dec.cursor = 0;
            double ga = 0.0, gb = 0.0;
            ASSERT_TRUE(wire::getDeltaDouble(in, &ga, &dec));
            ASSERT_TRUE(wire::getDeltaDouble(in, &gb, &dec));
            EXPECT_EQ(std::bit_cast<uint64_t>(a),
                      std::bit_cast<uint64_t>(ga));
            EXPECT_EQ(std::bit_cast<uint64_t>(b),
                      std::bit_cast<uint64_t>(gb));
        }
    }
    EXPECT_TRUE(in.empty());
}

TEST(SnapshotWire, KernelResultRoundTripIsBitwise)
{
    const std::vector<KernelResult> results = realResults(3, 2, 16);
    std::string buf;
    wire::DeltaChain enc;
    for (const KernelResult &r : results)
        appendKernelResult(buf, r, &enc);

    std::string_view in = buf;
    wire::DeltaChain dec;
    for (size_t i = 0; i < results.size(); ++i) {
        KernelResult got;
        ASSERT_TRUE(readKernelResult(in, &got, &dec));
        expectBitwiseEqual(results[i], got,
                           "result " + std::to_string(i));
    }
    EXPECT_TRUE(in.empty());
}

// ------------------------------------------------------------- en/decode

TEST(Snapshot, EncodeDecodeRoundTrip)
{
    const Snapshot snap = sampleSnapshot();
    const std::string bytes = encodeSnapshot(snap);
    Snapshot back;
    ASSERT_TRUE(decodeSnapshot(bytes, &back).ok());
    expectSnapshotsEqual(snap, back);
}

TEST(Snapshot, EncodeIsDeterministic)
{
    const Snapshot snap = sampleSnapshot();
    EXPECT_EQ(encodeSnapshot(snap), encodeSnapshot(snap));
}

TEST(Snapshot, IndexIsLazyAndDecodeEntryMatches)
{
    const Snapshot snap = sampleSnapshot();
    const std::string bytes = encodeSnapshot(snap);
    SnapshotIndex index;
    ASSERT_TRUE(indexSnapshot(bytes, &index).ok());
    ASSERT_EQ(snap.devices.size(), index.sections.size());
    for (size_t d = 0; d < index.sections.size(); ++d) {
        const SectionRef &ref = index.sections[d];
        EXPECT_EQ(snap.devices[d].device, ref.device);
        EXPECT_EQ(snap.devices[d].fingerprint, ref.fingerprint);
        ASSERT_EQ(snap.devices[d].entries.size(), ref.entries.size());
        for (size_t e = 0; e < ref.entries.size(); ++e) {
            SnapshotEntry entry;
            ASSERT_TRUE(decodeEntry(ref.entries[e], ref.latticeSize,
                                    &entry)
                            .ok());
            EXPECT_EQ(snap.devices[d].entries[e].slots, entry.slots);
        }
    }
}

TEST(Snapshot, VersionSkewIsFailedPreconditionNotCorruption)
{
    // A file from a future (or past) writer: valid by its own rules,
    // unreadable by ours. The loader must say "version skew" before
    // it says anything else — the daemon logs it and cold-starts.
    std::string bytes(kSnapshotMagic);
    wire::putVarint(bytes, kSnapshotFormatVersion + 1);
    bytes.append(16, '\0'); // Whatever a future header looks like.
    SnapshotIndex index;
    const Status status = indexSnapshot(bytes, &index);
    EXPECT_EQ(StatusCode::FailedPrecondition, status.code())
        << status.message();
}

TEST(Snapshot, HeaderBitFlipsAreRejectedAtIndexTime)
{
    const std::string bytes = encodeSnapshot(sampleSnapshot());
    SnapshotIndex index;
    ASSERT_TRUE(indexSnapshot(bytes, &index).ok());
    // The header spans everything before the first entry body.
    const size_t headerEnd = static_cast<size_t>(
        index.sections.front().entries.front().body.data() -
        bytes.data());
    Rng rng = sweepSubstream(0xdeadbeef, 1);
    for (int trial = 0; trial < 64; ++trial) {
        const size_t byte = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(headerEnd) - 1));
        const int bit = static_cast<int>(rng.uniformInt(0, 7));
        std::string flipped = bytes;
        flipped[byte] = static_cast<char>(
            static_cast<uint8_t>(flipped[byte]) ^ (1u << bit));
        SnapshotIndex idx;
        const Status status = indexSnapshot(flipped, &idx);
        EXPECT_FALSE(status.ok())
            << "flip byte " << byte << " bit " << bit
            << " went undetected";
    }
}

TEST(Snapshot, BlobBitFlipsAreContainedToTheirEntry)
{
    const std::string bytes = encodeSnapshot(sampleSnapshot());
    SnapshotIndex index;
    ASSERT_TRUE(indexSnapshot(bytes, &index).ok());
    Rng rng = sweepSubstream(0xdeadbeef, 2);
    for (int trial = 0; trial < 32; ++trial) {
        // Pick an entry, flip a bit inside its body: that entry must
        // fail to decode, every other entry must decode clean.
        const SectionRef &section =
            index.sections[static_cast<size_t>(rng.uniformInt(
                0,
                static_cast<int64_t>(index.sections.size()) - 1))];
        const size_t victim = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(section.entries.size()) - 1));
        const EntryRef &ref = section.entries[victim];
        const size_t offset =
            static_cast<size_t>(ref.body.data() - bytes.data()) +
            static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(ref.body.size()) - 1));
        const int bit = static_cast<int>(rng.uniformInt(0, 7));

        std::string flipped = bytes;
        flipped[offset] = static_cast<char>(
            static_cast<uint8_t>(flipped[offset]) ^ (1u << bit));
        SnapshotIndex idx;
        ASSERT_TRUE(indexSnapshot(flipped, &idx).ok())
            << "blob flip must not invalidate the header";
        for (size_t s = 0; s < idx.sections.size(); ++s) {
            const SectionRef &sec = idx.sections[s];
            for (size_t e = 0; e < sec.entries.size(); ++e) {
                SnapshotEntry entry;
                const bool ok =
                    decodeEntry(sec.entries[e], sec.latticeSize,
                                &entry)
                        .ok();
                const bool isVictim =
                    sec.device == section.device && e == victim;
                EXPECT_EQ(!isVictim, ok)
                    << "device " << sec.device << " entry " << e;
            }
        }
    }
}

TEST(Snapshot, EveryTruncationIsRejected)
{
    const std::string bytes = encodeSnapshot(sampleSnapshot());
    Snapshot full;
    ASSERT_TRUE(decodeSnapshot(bytes, &full).ok());
    Rng rng = sweepSubstream(0xdeadbeef, 3);
    for (int trial = 0; trial < 64; ++trial) {
        const size_t cut = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(bytes.size()) - 1));
        Snapshot snap;
        EXPECT_FALSE(
            decodeSnapshot(bytes.substr(0, cut), &snap).ok())
            << "cut at " << cut << " went undetected";
    }
}

TEST(Snapshot, RandomGarbageNeverDecodes)
{
    Rng rng = sweepSubstream(0xdeadbeef, 4);
    for (int trial = 0; trial < 32; ++trial) {
        std::string garbage(
            static_cast<size_t>(rng.uniformInt(0, 512)), '\0');
        for (char &c : garbage)
            c = static_cast<char>(rng.uniformInt(0, 255));
        // Half the trials keep a valid magic so the parser gets past
        // the first gate.
        if (trial % 2 == 0 && garbage.size() >= kSnapshotMagic.size())
            garbage.replace(0, kSnapshotMagic.size(), kSnapshotMagic);
        Snapshot snap;
        EXPECT_FALSE(decodeSnapshot(garbage, &snap).ok());
    }
}

// ------------------------------------------------------------ fingerprint

TEST(Snapshot, FingerprintSeparatesDevicesAndLattices)
{
    const std::vector<HardwareConfig> &lattice =
        fixture().sweep.configs();
    const uint64_t base =
        modelFingerprint(fixture().device, lattice);
    EXPECT_EQ(base, modelFingerprint(fixture().device, lattice))
        << "fingerprint must be a pure function of (device, lattice)";

    // Another registry device: different probes, different print.
    auto other = DeviceRegistry::instance().make("hbm-stacked");
    ASSERT_TRUE(other.ok());
    ConfigSweep otherSweep(other.value(), SweepOptions{});
    EXPECT_NE(base,
              modelFingerprint(other.value(), otherSweep.configs()));

    // A lattice edit (one point dropped) must move the print too:
    // the slot <-> config mapping changed.
    std::vector<HardwareConfig> trimmed = lattice;
    trimmed.pop_back();
    EXPECT_NE(base, modelFingerprint(fixture().device, trimmed));
}

// -------------------------------------------------------------- file I/O

TEST(Snapshot, FileRoundTripAndMissingFile)
{
    const std::string path = tmpPath("roundtrip");
    std::remove(path.c_str());

    const Result<Snapshot> missing = readSnapshotFile(path);
    EXPECT_EQ(StatusCode::NotFound, missing.status().code());

    const Snapshot snap = sampleSnapshot();
    size_t written = 0;
    ASSERT_TRUE(writeSnapshotFile(path, snap, &written).ok());
    EXPECT_GT(written, 0u);

    size_t read = 0;
    const Result<Snapshot> back = readSnapshotFile(path, &read);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(written, read);
    expectSnapshotsEqual(snap, back.value());

    SnapshotBytes mapped;
    ASSERT_TRUE(loadSnapshotBytes(path, &mapped).ok());
    EXPECT_EQ(written, mapped.size());
    SnapshotIndex index;
    EXPECT_TRUE(indexSnapshot(mapped.view(), &index).ok());

    std::remove(path.c_str());
}

TEST(Snapshot, FailedSaveLeavesPreviousFileIntact)
{
    const std::string path = tmpPath("atomic");
    std::remove(path.c_str());
    ASSERT_TRUE(writeSnapshotFile(path, sampleSnapshot()).ok());
    std::string before;
    ASSERT_TRUE(readSnapshotBytes(path, &before).ok());

    // Sabotage the temp file the writer stages into: a directory in
    // its place makes fopen fail, so the save errors out before it
    // can touch the real path.
    const std::string tmp = path + ".tmp";
    ASSERT_EQ(0, mkdir(tmp.c_str(), 0755));
    Snapshot replacement = sampleSnapshot();
    replacement.devices.pop_back();
    EXPECT_FALSE(writeSnapshotFile(path, replacement).ok());

    std::string after;
    ASSERT_TRUE(readSnapshotBytes(path, &after).ok());
    EXPECT_EQ(before, after)
        << "a failed save must not disturb the previous snapshot";

    rmdir(tmp.c_str());
    std::remove(path.c_str());
}

TEST(Snapshot, SaveToUnreachablePathFails)
{
    // The parent "directory" is a regular file: nothing can be
    // created beneath it, even running as root.
    const std::string blocker = tmpPath("blocker");
    std::FILE *f = std::fopen(blocker.c_str(), "wb");
    ASSERT_NE(nullptr, f);
    std::fclose(f);
    EXPECT_FALSE(
        writeSnapshotFile(blocker + "/nested.snap", sampleSnapshot())
            .ok());
    std::remove(blocker.c_str());
}
