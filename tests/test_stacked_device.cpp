/**
 * @file
 * Tests for the future-system extensions, now served through the
 * DeviceRegistry: the "hbm-stacked" profile (the paper's Section 9
 * future work) and memory-interface voltage scaling (the Section
 * 3.3/7.2 "would be greater" remark).
 */

#include <gtest/gtest.h>

#include "harmonia/core/harmonia_governor.hh"
#include "harmonia/core/sensitivity.hh"
#include "harmonia/sim/device_registry.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

DeviceProfile
stackedProfile()
{
    return DeviceRegistry::instance().profile("hbm-stacked").value();
}

} // namespace

TEST(StackedDevice, ConfigValidatesAndDoublesBandwidth)
{
    const DeviceProfile profile = stackedProfile();
    const GcnDeviceConfig &cfg = profile.config;
    EXPECT_NO_THROW(cfg.validate());
    // 550 MHz x 512 B x 2 = 563 GB/s, ~2x the GDDR5 card.
    EXPECT_NEAR(cfg.peakMemBandwidth(cfg.memFreqMaxMhz), 563.2e9,
                1e9);
    const GcnDeviceConfig gddr5 =
        DeviceRegistry::instance().profile("hd7970").value().config;
    EXPECT_GT(cfg.peakMemBandwidth(cfg.memFreqMaxMhz),
              2.0 * gddr5.peakMemBandwidth(1375.0));
}

TEST(StackedDevice, LatticeHasEightMemoryPoints)
{
    const GpuDevice device = makeDevice("hbm-stacked").value();
    EXPECT_EQ(device.space().values(Tunable::MemFreq).size(), 8u);
    EXPECT_EQ(device.space().size(), 8u * 8u * 8u);
    EXPECT_EQ(stackedProfile().latticeSize(), 8u * 8u * 8u);
}

TEST(StackedDevice, RunsTheWholeSuiteUnchanged)
{
    const GpuDevice device = makeDevice("hbm-stacked").value();
    const HardwareConfig maxCfg = device.space().maxConfig();
    for (const auto &app : standardSuite()) {
        for (const auto &k : app.kernels) {
            const KernelResult r = device.run(k, 0, maxCfg);
            ASSERT_GT(r.time(), 0.0);
            ASSERT_NO_THROW(r.timing.counters.validate());
        }
    }
}

TEST(StackedDevice, LowerPerBitEnergyThanGddr5)
{
    // Same traffic, far less interface power on package.
    const DeviceProfile profile = stackedProfile();
    const Gddr5Model gddr5;
    const Gddr5Model hbm(profile.memTiming, profile.memPower);
    const double traffic = 200e9;
    const double pG = gddr5.power(1375.0, traffic, 0.7).total();
    const double pH = hbm.power(550.0, traffic, 0.7).total();
    EXPECT_LT(pH, 0.75 * pG);
}

TEST(StackedDevice, MemoryBoundKernelsSpeedUpOnTheStack)
{
    const GpuDevice gddr5;
    const GpuDevice stacked = makeDevice("hbm-stacked").value();
    const KernelProfile k = makeDeviceMemory().kernels.front();
    const double tG =
        gddr5.run(k, 0, gddr5.space().maxConfig()).time();
    const double tS =
        stacked.run(k, 0, stacked.space().maxConfig()).time();
    EXPECT_LT(tS, tG);
}

TEST(StackedDevice, SensitivityMeasurementIsLatticeGeneric)
{
    const GpuDevice device = makeDevice("hbm-stacked").value();
    const KernelProfile k = makeMaxFlops().kernels.front();
    const SensitivityVector s = measureSensitivities(device, k, 0);
    EXPECT_GT(s.compute(), 0.8);
    EXPECT_LT(s.memBandwidth, 0.1);
}

TEST(StackedDevice, OptionsHelperProducesValidTargets)
{
    const GpuDevice device = makeDevice("hbm-stacked").value();
    const HarmoniaOptions options =
        harmoniaOptionsFor(device.space());
    // Constructing the governor validates every bin target against
    // the lattice.
    EXPECT_NO_THROW(HarmoniaGovernor(
        device.space(), SensitivityPredictor::paperTable3(), options));
    EXPECT_EQ(options.cuTargets[2], 32);
    EXPECT_EQ(options.memTargets[2], 550);
    EXPECT_LT(options.memTargets[0], options.memTargets[1]);
}

TEST(OptionsHelper, ReproducesHd7970Defaults)
{
    const GpuDevice device; // Registry default: hd7970.
    const HarmoniaOptions derived = harmoniaOptionsFor(device.space());
    const HarmoniaOptions defaults;
    EXPECT_EQ(derived.cuTargets, defaults.cuTargets);
    EXPECT_EQ(derived.freqTargets, defaults.freqTargets);
    EXPECT_EQ(derived.memTargets, defaults.memTargets);
}

TEST(MemVoltageScaling, ReducesInterfacePowerAtLowFrequency)
{
    Gddr5PowerParams scaled;
    scaled.voltageScaling = true;
    const Gddr5Model fixedModel;
    const Gddr5Model scaledModel(Gddr5TimingParams{}, scaled);

    // At the reference frequency both agree; at low frequency the
    // scaled interface is cheaper.
    EXPECT_NEAR(scaledModel.power(1375.0, 50e9, 0.7).total(),
                fixedModel.power(1375.0, 50e9, 0.7).total(), 1e-9);
    EXPECT_LT(scaledModel.power(475.0, 50e9, 0.7).total(),
              fixedModel.power(475.0, 50e9, 0.7).total());
}

TEST(MemVoltageScaling, VoltageFractionIsLinearInFrequency)
{
    Gddr5PowerParams p;
    p.voltageScaling = true;
    EXPECT_DOUBLE_EQ(p.voltageFraction(1375.0), 1.0);
    EXPECT_NEAR(p.voltageFraction(0.0), p.minVoltageFraction, 1e-12);
    Gddr5PowerParams fixed;
    EXPECT_DOUBLE_EQ(fixed.voltageFraction(475.0), 1.0);
}
