/**
 * @file
 * Unit and property tests for the streaming statistics helpers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/common/rng.hh"
#include "harmonia/common/stats.hh"

using namespace harmonia;

TEST(RunningStats, EmptyIsZeroed)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, MeanAndVarianceMatchClosedForm)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsBulk)
{
    Rng rng(5);
    RunningStats bulk, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        bulk.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), bulk.count());
    EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), bulk.min());
    EXPECT_DOUBLE_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Geomean, RejectsEmptyAndNonPositive)
{
    EXPECT_THROW(geomean({}), ConfigError);
    EXPECT_THROW(geomean({1.0, 0.0}), ConfigError);
    EXPECT_THROW(geomean({1.0, -2.0}), ConfigError);
}

TEST(Geomean, NeverExceedsArithmeticMean)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> v;
        for (int i = 0; i < 10; ++i)
            v.push_back(rng.uniform(0.1, 10.0));
        EXPECT_LE(geomean(v), mean(v) + 1e-12);
    }
}

TEST(Mean, Basic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_THROW(mean({}), ConfigError);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_THROW(median({}), ConfigError);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    h.add(1.0);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-5.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 4
    EXPECT_DOUBLE_EQ(h.binWeight(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binWeight(4), 2.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 5.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, Edges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 10.0);
    EXPECT_THROW(h.binWeight(5), ConfigError);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 10.0, 0), ConfigError);
    EXPECT_THROW(Histogram(5.0, 5.0, 3), ConfigError);
    EXPECT_THROW(Histogram(5.0, 1.0, 3), ConfigError);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0, 3.0);
    h.add(3.0, 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Residency, FractionsSumToOne)
{
    Residency r;
    r.add(300.0, 1.0);
    r.add(500.0, 2.0);
    r.add(300.0, 1.0);
    EXPECT_DOUBLE_EQ(r.total(), 4.0);
    EXPECT_DOUBLE_EQ(r.fraction(300.0), 0.5);
    EXPECT_DOUBLE_EQ(r.fraction(500.0), 0.5);
    EXPECT_DOUBLE_EQ(r.fraction(999.0), 0.0);
    const auto states = r.states();
    ASSERT_EQ(states.size(), 2u);
    EXPECT_DOUBLE_EQ(states[0], 300.0);
    EXPECT_DOUBLE_EQ(states[1], 500.0);
}

TEST(Residency, EmptyIsSafe)
{
    Residency r;
    EXPECT_DOUBLE_EQ(r.total(), 0.0);
    EXPECT_DOUBLE_EQ(r.fraction(1.0), 0.0);
    EXPECT_TRUE(r.states().empty());
}
