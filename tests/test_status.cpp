/**
 * @file
 * Tests for the Status / Result<T> boundary-error types
 * (common/status.hh): code vocabulary, exception translation, and the
 * Result value/rethrow contract the facade and serving layers rely on.
 */

#include "harmonia/common/status.hh"

#include <string>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"

using namespace harmonia;

namespace
{

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.str(), "ok");
    EXPECT_EQ(s, Status::okStatus());
}

TEST(Status, NamedConstructorsCarryCodeAndMessage)
{
    EXPECT_EQ(Status::invalidArgument("bad").code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::notFound("gone").code(), StatusCode::NotFound);
    EXPECT_EQ(Status::failedPrecondition("state").code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(Status::resourceExhausted("limit").code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(Status::unavailable("bye").code(),
              StatusCode::Unavailable);
    EXPECT_EQ(Status::internal("bug").code(), StatusCode::Internal);
    EXPECT_EQ(Status::unknownDevice("no such part").code(),
              StatusCode::UnknownDevice);

    const Status s = Status::notFound("no such kernel");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "no such kernel");
    EXPECT_EQ(s.str(), "not_found: no such kernel");
}

TEST(Status, CodeNamesAreStableWireStrings)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(statusCodeName(StatusCode::NotFound), "not_found");
    EXPECT_STREQ(statusCodeName(StatusCode::FailedPrecondition),
                 "failed_precondition");
    EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
                 "resource_exhausted");
    EXPECT_STREQ(statusCodeName(StatusCode::Unavailable),
                 "unavailable");
    EXPECT_STREQ(statusCodeName(StatusCode::UnknownDevice),
                 "unknown_device");
    EXPECT_STREQ(statusCodeName(StatusCode::Internal), "internal");
}

TEST(Status, FromCurrentExceptionMapsLibraryErrors)
{
    auto capture = [](auto &&thrower) {
        try {
            thrower();
        } catch (...) {
            return statusFromCurrentException();
        }
        return Status::okStatus();
    };

    const Status user =
        capture([] { throw ConfigError("bad cu count"); });
    EXPECT_EQ(user.code(), StatusCode::InvalidArgument);
    EXPECT_NE(user.message().find("bad cu count"), std::string::npos);

    const Status bug =
        capture([] { throw InternalError("impossible state"); });
    EXPECT_EQ(bug.code(), StatusCode::Internal);

    const Status other =
        capture([] { throw std::runtime_error("disk on fire"); });
    EXPECT_EQ(other.code(), StatusCode::Internal);
    EXPECT_NE(other.message().find("disk on fire"), std::string::npos);
}

TEST(Result, ValueRoundTrip)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, ErrorCarriesStatusAndRethrows)
{
    Result<std::string> r(Status::notFound("no such session"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::NotFound);
    // User-caused codes rethrow as ConfigError...
    EXPECT_THROW(r.value(), ConfigError);
    Result<int> dev(Status::unknownDevice("no such part"));
    EXPECT_THROW(dev.value(), ConfigError);
    // ...internal ones as InternalError.
    Result<std::string> bug(Status::internal("oops"));
    EXPECT_THROW(bug.value(), InternalError);
    EXPECT_EQ(bug.valueOr("fallback"), "fallback");
}

TEST(Result, MoveOnlyPayload)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> owned = std::move(r).value();
    ASSERT_NE(owned, nullptr);
    EXPECT_EQ(*owned, 9);
}

TEST(Result, ArrowOperatorReachesMembers)
{
    Result<std::string> r(std::string("harmonia"));
    EXPECT_EQ(r->size(), 8u);
}

} // namespace
