/**
 * @file
 * Determinism harness for the parallel sweep engine.
 *
 * Parallelizing the RNG-seeded model is only safe if results are
 * provably bit-identical to the serial path. These property tests pin
 * that down for every layer ported onto the sweep engine: oracle
 * search, sensitivity ground truth, training, and the full campaign,
 * each compared across 1, 2, and 8 worker threads with exact
 * (bitwise) double equality. Also covers the sweep memo cache's hit
 * accounting and the per-task RNG substream scheme.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harmonia/core/campaign.hh"
#include "harmonia/core/oracle.hh"
#include "harmonia/core/sensitivity.hh"
#include "harmonia/core/sweep.hh"
#include "harmonia/core/training.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

/** Small seeded app subset; iterations trimmed to bound test cost. */
std::vector<Application>
miniSuite()
{
    std::vector<Application> suite = {makeComd(), makeBpt(),
                                      makeGraph500(), makeSpmv()};
    for (auto &app : suite)
        app.iterations = std::min(app.iterations, 3);
    return suite;
}

Campaign
runCampaign(int jobs)
{
    CampaignOptions options;
    options.includeOracle = true;
    options.includeFreqOnly = true;
    options.jobs = jobs;
    Campaign campaign(device(), miniSuite(), options);
    campaign.run();
    return campaign;
}

constexpr int kJobVariants[] = {2, 8};

} // namespace

TEST(SweepDeterminism, OracleSearchIsThreadCountInvariant)
{
    const auto suite = miniSuite();
    ConfigSweep serial(device(), {.jobs = 1});
    for (int jobs : kJobVariants) {
        ConfigSweep parallel(device(), {.jobs = jobs});
        for (const auto &app : suite) {
            for (const auto &kernel : app.kernels) {
                for (OracleObjective obj :
                     {OracleObjective::MinEd2, OracleObjective::MaxPerf,
                      OracleObjective::MinEnergy}) {
                    EXPECT_EQ(bestConfigFor(serial, kernel, 0, obj),
                              bestConfigFor(parallel, kernel, 0, obj))
                        << kernel.id() << " jobs=" << jobs;
                }
            }
        }
    }
}

TEST(SweepDeterminism, SweepEvaluationBitIdenticalToDirectRuns)
{
    const auto suite = miniSuite();
    const KernelProfile &kernel = suite.front().kernels.front();
    ConfigSweep sweep(device(), {.jobs = 8});
    const auto &results = sweep.evaluate(kernel, 0);
    const auto &configs = sweep.configs();
    ASSERT_EQ(results.size(), configs.size());
    const KernelPhase phase = kernel.phase(0);
    for (size_t i = 0; i < configs.size(); i += 17) {
        const KernelResult direct =
            device().run(kernel, phase, configs[i]);
        EXPECT_EQ(results[i].time(), direct.time());
        EXPECT_EQ(results[i].cardEnergy, direct.cardEnergy);
        EXPECT_EQ(results[i].ed2(), direct.ed2());
    }
}

TEST(SweepDeterminism, SensitivitiesMatchDirectPathExactly)
{
    const auto suite = miniSuite();
    for (int jobs : {1, 2, 8}) {
        ConfigSweep sweep(device(), {.jobs = jobs});
        for (const auto &app : suite) {
            const KernelProfile &kernel = app.kernels.front();
            const SensitivityVector direct =
                measureSensitivities(device(), kernel, 0);
            const SensitivityVector viaSweep =
                measureSensitivities(sweep, kernel, 0);
            EXPECT_EQ(direct.cuCount, viaSweep.cuCount);
            EXPECT_EQ(direct.computeFreq, viaSweep.computeFreq);
            EXPECT_EQ(direct.memBandwidth, viaSweep.memBandwidth);
        }
    }
}

TEST(SweepDeterminism, SuiteSensitivitySweepIsThreadCountInvariant)
{
    const auto suite = miniSuite();
    const auto serial = measureSuiteSensitivities(device(), suite, 2, 1);
    ASSERT_FALSE(serial.empty());
    for (int jobs : kJobVariants) {
        const auto parallel =
            measureSuiteSensitivities(device(), suite, 2, jobs);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].kernelId, parallel[i].kernelId);
            EXPECT_EQ(serial[i].iteration, parallel[i].iteration);
            EXPECT_EQ(serial[i].sensitivity.cuCount,
                      parallel[i].sensitivity.cuCount);
            EXPECT_EQ(serial[i].sensitivity.computeFreq,
                      parallel[i].sensitivity.computeFreq);
            EXPECT_EQ(serial[i].sensitivity.memBandwidth,
                      parallel[i].sensitivity.memBandwidth);
        }
    }
}

TEST(SweepDeterminism, TrainingSetIsThreadCountInvariant)
{
    const auto suite = miniSuite();
    TrainingOptions serialOpt;
    serialOpt.iterationsPerKernel = 2;
    const auto serial =
        collectTrainingSamples(device(), suite, serialOpt);
    ASSERT_GE(serial.size(), 10u);
    for (int jobs : kJobVariants) {
        TrainingOptions opt = serialOpt;
        opt.jobs = jobs;
        const auto parallel = collectTrainingSamples(device(), suite, opt);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].kernelId, parallel[i].kernelId);
            EXPECT_EQ(serial[i].iteration, parallel[i].iteration);
            EXPECT_EQ(serial[i].bandwidthSens, parallel[i].bandwidthSens);
            EXPECT_EQ(serial[i].computeSens, parallel[i].computeSens);
        }
    }
}

TEST(SweepDeterminism, CampaignMetricsAreThreadCountInvariant)
{
    const Campaign serial = runCampaign(1);
    for (int jobs : kJobVariants) {
        const Campaign parallel = runCampaign(jobs);
        for (Scheme scheme : serial.schemes()) {
            for (const auto &app : serial.appNames()) {
                for (CampaignMetric metric :
                     {CampaignMetric::Ed2, CampaignMetric::Energy,
                      CampaignMetric::Power, CampaignMetric::Time}) {
                    // Bitwise equality: parallel evaluation must not
                    // perturb a single ULP anywhere.
                    EXPECT_EQ(serial.metric(scheme, app, metric),
                              parallel.metric(scheme, app, metric))
                        << schemeName(scheme) << "/" << app
                        << " jobs=" << jobs;
                }
                // Oracle picks, residencies and traces feed figures
                // 14-16; spot-check the trace configs too.
                const AppRunResult &a = serial.result(scheme, app);
                const AppRunResult &b = parallel.result(scheme, app);
                ASSERT_EQ(a.trace.size(), b.trace.size());
                for (size_t i = 0; i < a.trace.size(); i += 7)
                    EXPECT_EQ(a.trace[i].config, b.trace[i].config);
            }
        }
    }
}

TEST(SweepDeterminism, CacheHitAccountingOnRepeatedRuns)
{
    const auto suite = miniSuite();
    const KernelProfile &kernel = suite.front().kernels.front();
    ConfigSweep sweep(device(), {.jobs = 4});
    EXPECT_EQ(sweep.cacheHits(), 0u);
    EXPECT_EQ(sweep.cacheMisses(), 0u);

    sweep.evaluate(kernel, 0);
    EXPECT_EQ(sweep.cacheMisses(), 1u);
    EXPECT_EQ(sweep.cacheHits(), 0u);
    EXPECT_EQ(sweep.cacheEntries(), 1u);

    // Repeated run: served from the memo, hit count reported.
    sweep.evaluate(kernel, 0);
    sweep.evaluate(kernel, 0);
    EXPECT_EQ(sweep.cacheMisses(), 1u);
    EXPECT_EQ(sweep.cacheHits(), 2u);

    // A different invocation is a fresh miss.
    sweep.evaluate(kernel, 1);
    EXPECT_EQ(sweep.cacheMisses(), 2u);
    EXPECT_EQ(sweep.cacheEntries(), 2u);

    sweep.clearCache();
    EXPECT_EQ(sweep.cacheEntries(), 0u);
    EXPECT_EQ(sweep.cacheMisses(), 2u); // Statistics survive clears.

    // The oracle's repeated searches of one invocation hit its sweep
    // cache through the governor-level memo as well.
    OracleGovernor oracle(device());
    oracle.decide(kernel, 0);
    oracle.decide(kernel, 0);
    EXPECT_EQ(oracle.searches(), 1u);
    EXPECT_EQ(oracle.sweep().cacheMisses(), 1u);
}

TEST(SweepDeterminism, RngSubstreamsAreIndexDeterministic)
{
    // Same (seed, index) -> identical stream, regardless of creation
    // order; different indices -> decorrelated streams.
    Rng a = sweepSubstream(42, 7);
    Rng c = sweepSubstream(42, 8);
    Rng b = sweepSubstream(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng a2 = sweepSubstream(42, 7);
    bool differs = false;
    for (int i = 0; i < 100; ++i)
        differs = differs || (a2.next() != c.next());
    EXPECT_TRUE(differs);
}
