/**
 * @file
 * Unit tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/common/table.hh"

using namespace harmonia;

TEST(FormatNum, FixedPrecision)
{
    EXPECT_EQ(formatNum(3.14159, 2), "3.14");
    EXPECT_EQ(formatNum(1.0, 0), "1");
    EXPECT_EQ(formatNum(-0.5, 1), "-0.5");
}

TEST(FormatPct, ScalesFraction)
{
    EXPECT_EQ(formatPct(0.123, 1), "12.3%");
    EXPECT_EQ(formatPct(1.0, 0), "100%");
    EXPECT_EQ(formatPct(-0.05, 1), "-5.0%");
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), ConfigError);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.row().cell("x").num(1.5, 1);
    t.row().cell("long-name").numInt(42);
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    // All lines equal width up to trailing content alignment: header
    // and separator must be present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, TitlePrinted)
{
    TextTable t({"a"});
    t.row().cell("1");
    const std::string out = t.str("My Title");
    EXPECT_EQ(out.find("My Title"), 0u);
}

TEST(TextTable, CellBeforeRowPanics)
{
    TextTable t({"a"});
    EXPECT_THROW(t.cell("x"), InternalError);
}

TEST(TextTable, TooManyCellsPanics)
{
    TextTable t({"a", "b"});
    t.row().cell("1").cell("2");
    EXPECT_THROW(t.cell("3"), InternalError);
}

TEST(TextTable, ShortRowsRenderBlank)
{
    TextTable t({"a", "b"});
    t.row().cell("only");
    EXPECT_NO_THROW(t.str());
}

TEST(TextTable, CountsRowsAndCols)
{
    TextTable t({"a", "b", "c"});
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.row().cell("x");
    t.row();
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PctCell)
{
    TextTable t({"p"});
    t.row().pct(0.5, 0);
    EXPECT_NE(t.str().find("50%"), std::string::npos);
}
