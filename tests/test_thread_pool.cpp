/**
 * @file
 * Unit tests for the fixed-size worker pool behind the sweep engine:
 * lifecycle, exact index coverage, serial fallback, oversubscription,
 * and exception propagation out of tasks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harmonia/common/thread_pool.hh"

using namespace harmonia;

TEST(ThreadPool, StartAndStopIdle)
{
    // Pools of several sizes construct and destruct without running
    // anything; destruction joins all workers.
    for (int n : {1, 2, 4, 8}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.numThreads(), n);
    }
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
    ThreadPool negative(-3);
    EXPECT_EQ(negative.numThreads(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    constexpr size_t kCount = 10000;
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, 7, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, AutoChunkCoversEverything)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), 0, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, MoreTasksThanThreads)
{
    // Far more chunks than workers: everything still runs exactly
    // once and the sum comes out right.
    ThreadPool pool(2);
    constexpr size_t kCount = 5000;
    std::vector<long long> out(kCount, 0);
    pool.parallelFor(kCount, 1, [&](size_t i) {
        out[i] = static_cast<long long>(i) * 2;
    });
    long long sum = std::accumulate(out.begin(), out.end(), 0ll);
    EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1));
}

TEST(ThreadPool, SerialFallbackRunsInlineInOrder)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<size_t> order;
    pool.parallelFor(100, 8, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 100u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ZeroCountIsANoop)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, 1, [&](size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesFromTask)
{
    ThreadPool pool(4);
    auto boom = [](size_t i) {
        if (i == 37)
            throw std::runtime_error("task 37 failed");
    };
    EXPECT_THROW(pool.parallelFor(100, 3, boom), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialFallback)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(10, 1,
                                  [](size_t i) {
                                      if (i == 5)
                                          throw std::logic_error("five");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, UsableAfterTaskException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     50, 1, [](size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    // The pool survives a failed loop and runs the next one fully.
    std::vector<std::atomic<int>> hits(200);
    pool.parallelFor(hits.size(), 4, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, BackToBackLoopsReuseWorkers)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.parallelFor(123, 5, [&](size_t) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 123);
    }
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}
