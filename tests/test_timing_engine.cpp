/**
 * @file
 * Unit and property tests for the timing engine — the mechanisms of
 * paper Section 3 must emerge from the model.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/timing/timing_engine.hh"
#include "workloads/generator.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const TimingEngine &
engine()
{
    static TimingEngine e{hd7970()};
    return e;
}

KernelProfile
computeBoundKernel()
{
    KernelProfile k;
    k.app = "test";
    k.name = "compute";
    k.resources.vgprPerWorkitem = 24;
    k.basePhase.workItems = 1 << 20;
    k.basePhase.aluInstsPerItem = 300.0;
    k.basePhase.fetchInstsPerItem = 0.05;
    k.basePhase.writeInstsPerItem = 0.01;
    k.basePhase.l2HitBase = 0.8;
    k.basePhase.l2FootprintPerCuBytes = 1024.0;
    return k;
}

KernelProfile
memoryBoundKernel()
{
    KernelProfile k;
    k.app = "test";
    k.name = "memory";
    k.resources.vgprPerWorkitem = 16;
    k.basePhase.workItems = 1 << 21;
    k.basePhase.aluInstsPerItem = 5.0;
    k.basePhase.fetchInstsPerItem = 4.0;
    k.basePhase.writeInstsPerItem = 1.0;
    k.basePhase.l2HitBase = 0.05;
    k.basePhase.mlpPerWave = 6.0;
    k.basePhase.streamEfficiency = 0.9;
    return k;
}

} // namespace

TEST(TimingEngine, ComputeBoundScalesWithComputeThroughput)
{
    const KernelProfile k = computeBoundKernel();
    const double tMax =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double tHalfCu =
        engine().runIteration(k, 0, {16, 1000, 1375}).execTime;
    const double tHalfFreq =
        engine().runIteration(k, 0, {32, 500, 1375}).execTime;
    // The fixed launch overhead slightly dilutes the scaling.
    EXPECT_NEAR(tHalfCu / tMax, 2.0, 0.1);
    EXPECT_NEAR(tHalfFreq / tMax, 2.0, 0.1);
}

TEST(TimingEngine, ComputeBoundInsensitiveToMemoryFrequency)
{
    const KernelProfile k = computeBoundKernel();
    const double tHi =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double tLo =
        engine().runIteration(k, 0, {32, 1000, 475}).execTime;
    EXPECT_NEAR(tLo / tHi, 1.0, 0.02);
}

TEST(TimingEngine, MemoryBoundScalesWithBusFrequency)
{
    const KernelProfile k = memoryBoundKernel();
    const double tHi =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double tLo =
        engine().runIteration(k, 0, {32, 1000, 475}).execTime;
    // Bus peak ratio is 264/91.2 ~ 2.9.
    EXPECT_GT(tLo / tHi, 2.2);
}

TEST(TimingEngine, MemoryBoundSaturatesWithCompute)
{
    const KernelProfile k = memoryBoundKernel();
    const double tFull =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double tHalf =
        engine().runIteration(k, 0, {16, 1000, 1375}).execTime;
    // Far past the balance knee: halving CUs costs almost nothing.
    EXPECT_NEAR(tHalf / tFull, 1.0, 0.05);
}

TEST(TimingEngine, MemoryBoundSensitiveToLowComputeClock)
{
    // The Figure 9 crossing effect.
    const KernelProfile k = memoryBoundKernel();
    const double t1000 =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double t300 =
        engine().runIteration(k, 0, {32, 300, 1375}).execTime;
    EXPECT_GT(t300 / t1000, 1.5);
}

TEST(TimingEngine, LaunchOverheadDominatesTinyKernels)
{
    KernelProfile k = computeBoundKernel();
    k.basePhase.workItems = 1024.0;
    k.basePhase.aluInstsPerItem = 8.0;
    const double tMax =
        engine().runIteration(k, 0, {32, 1000, 1375}).execTime;
    const double tMin =
        engine().runIteration(k, 0, {4, 300, 475}).execTime;
    // Both dominated by the fixed launch overhead.
    EXPECT_LT(tMin / tMax, 1.25);
    EXPECT_GT(tMax, engine().params().launchOverheadSec);
}

TEST(TimingEngine, DivergenceSerializesAndLowersUtilization)
{
    KernelProfile k = computeBoundKernel();
    const KernelTiming base =
        engine().runIteration(k, 0, {32, 1000, 1375});
    k.basePhase.branchDivergence = 0.5;
    k.basePhase.divergenceSerialization = 1.0;
    const KernelTiming div =
        engine().runIteration(k, 0, {32, 1000, 1375});
    EXPECT_NEAR(div.computeTime / base.computeTime, 1.5, 0.01);
    EXPECT_DOUBLE_EQ(div.counters.valuUtilization, 50.0);
    EXPECT_DOUBLE_EQ(base.counters.valuUtilization, 100.0);
}

TEST(TimingEngine, PoorCoalescingInflatesTraffic)
{
    KernelProfile k = memoryBoundKernel();
    const KernelTiming good =
        engine().runIteration(k, 0, {32, 1000, 1375});
    k.basePhase.coalescing = 0.25;
    const KernelTiming bad =
        engine().runIteration(k, 0, {32, 1000, 1375});
    EXPECT_NEAR(bad.requestedBytes / good.requestedBytes, 4.0, 0.01);
    EXPECT_GT(bad.execTime, good.execTime);
}

TEST(TimingEngine, LowOccupancyLimitsEffectiveBandwidth)
{
    KernelProfile k = memoryBoundKernel();
    k.basePhase.mlpPerWave = 0.5;
    k.resources.vgprPerWorkitem = 66; // 30% occupancy
    const KernelTiming t =
        engine().runIteration(k, 0, {32, 1000, 1375});
    EXPECT_EQ(t.bandwidth.limiter, BandwidthLimiter::Concurrency);
    EXPECT_LT(t.bandwidth.effectiveBps, 150e9);
}

TEST(TimingEngine, CountersAreInternallyConsistent)
{
    for (const auto &app : standardSuite()) {
        for (const auto &k : app.kernels) {
            const KernelTiming t =
                engine().runIteration(k, 0, {32, 1000, 1375});
            EXPECT_NO_THROW(t.counters.validate());
            EXPECT_GT(t.execTime, 0.0);
            EXPECT_GE(t.execTime, t.busyTime);
            EXPECT_LE(t.offChipBytes, t.requestedBytes + 1e-6);
            EXPECT_DOUBLE_EQ(t.counters.offChipBytes, t.offChipBytes);
        }
    }
}

TEST(TimingEngine, Deterministic)
{
    const KernelProfile k = memoryBoundKernel();
    const KernelTiming a =
        engine().runIteration(k, 3, {16, 700, 925});
    const KernelTiming b =
        engine().runIteration(k, 3, {16, 700, 925});
    EXPECT_DOUBLE_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.counters.valuBusy, b.counters.valuBusy);
}

TEST(TimingEngine, RejectsInvalidConfig)
{
    const KernelProfile k = computeBoundKernel();
    EXPECT_THROW(engine().runIteration(k, 0, {32, 950, 1375}),
                 ConfigError);
}

TEST(TimingEngine, ConstructorValidatesParams)
{
    TimingParams p;
    p.issueEfficiency = 0.0;
    EXPECT_THROW(TimingEngine(hd7970(), CacheModel(hd7970()),
                              MemorySystem(hd7970(), Gddr5Model()), p),
                 ConfigError);
    p = TimingParams{};
    p.launchOverheadSec = -1.0;
    EXPECT_THROW(TimingEngine(hd7970(), CacheModel(hd7970()),
                              MemorySystem(hd7970(), Gddr5Model()), p),
                 ConfigError);
}

/**
 * Property sweep over random kernels: execution time is positive,
 * monotone non-increasing when memory or compute frequency rises, and
 * counters always validate.
 */
class TimingEngineRandomKernels
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TimingEngineRandomKernels, InvariantsHold)
{
    WorkloadGenerator gen(GetParam());
    const KernelProfile k = gen.randomKernel("prop", "k");
    const ConfigSpace space(hd7970());

    double prevMem = 1e300;
    for (int memF : space.values(Tunable::MemFreq)) {
        const KernelTiming t =
            engine().runIteration(k, 0, {32, 1000, memF});
        ASSERT_GT(t.execTime, 0.0);
        ASSERT_NO_THROW(t.counters.validate());
        // Higher memory frequency never hurts.
        ASSERT_LE(t.execTime, prevMem * (1.0 + 1e-9));
        prevMem = t.execTime;
    }

    double prevFreq = 1e300;
    for (int f : space.values(Tunable::ComputeFreq)) {
        const KernelTiming t =
            engine().runIteration(k, 0, {32, f, 1375});
        // Higher compute frequency never hurts.
        ASSERT_LE(t.execTime, prevFreq * (1.0 + 1e-9));
        prevFreq = t.execTime;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingEngineRandomKernels,
                         ::testing::Range<uint64_t>(1, 21));
