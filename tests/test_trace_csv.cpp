/**
 * @file
 * AppRunResult::writeTraceCsv and the time-weighted Residency
 * accounting: header round-trip, one CSV row per trace entry, and
 * residency fractions that sum to one with total() equal to the run's
 * execution time.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "harmonia/common/stats.hh"
#include "harmonia/core/baseline_governor.hh"
#include "harmonia/core/runtime.hh"
#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

namespace harmonia
{
namespace
{

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

AppRunResult
runComd()
{
    GpuDevice device;
    BaselineGovernor governor(device.space());
    Runtime runtime(device);
    return runtime.run(makeComd(), governor);
}

TEST(TraceCsv, HeaderRoundTrip)
{
    std::ostringstream out;
    runComd().writeTraceCsv(out);
    const auto lines = splitLines(out.str());
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.front(),
              "kernel,iteration,cuCount,computeFreqMhz,memFreqMhz,"
              "timeSec,cardEnergyJ,powerW,valuBusy,memUnitBusy,"
              "icActivity,l2CacheHit");
}

TEST(TraceCsv, OneRowPerTraceEntry)
{
    const AppRunResult run = runComd();
    ASSERT_FALSE(run.trace.empty());

    std::ostringstream out;
    run.writeTraceCsv(out);
    const auto lines = splitLines(out.str());
    // Header plus one row per kernel invocation.
    EXPECT_EQ(lines.size(), run.trace.size() + 1);

    // Every data row names a kernel from the trace and has the full
    // column count.
    for (size_t i = 1; i < lines.size(); ++i) {
        const std::string &row = lines[i];
        const size_t commas =
            static_cast<size_t>(std::count(row.begin(), row.end(), ','));
        EXPECT_EQ(commas, 11u) << "row " << i << ": " << row;
        EXPECT_EQ(row.rfind(run.trace[i - 1].kernelId + ",", 0), 0u)
            << "row " << i << ": " << row;
    }
}

TEST(TraceCsv, ResidencyFractionsSumToOne)
{
    const AppRunResult run = runComd();
    for (const Tunable t :
         {Tunable::CuCount, Tunable::ComputeFreq, Tunable::MemFreq}) {
        const Residency &res = run.residency(t);
        double sum = 0.0;
        for (double state : res.states())
            sum += res.fraction(state);
        EXPECT_NEAR(sum, 1.0, 1e-9);
        // Time-weighted: the accumulated weight is the run's total
        // kernel execution time.
        EXPECT_NEAR(res.total(), run.totalTime,
                    1e-9 * std::max(1.0, run.totalTime));
    }
}

TEST(TraceCsv, ResidencyTimeWeighting)
{
    Residency res;
    res.add(1000.0, 3.0);
    res.add(925.0, 1.0);
    ASSERT_EQ(res.states(), (std::vector<double>{925.0, 1000.0}));
    EXPECT_DOUBLE_EQ(res.total(), 4.0);
    EXPECT_DOUBLE_EQ(res.fraction(1000.0), 0.75);
    EXPECT_DOUBLE_EQ(res.fraction(925.0), 0.25);
    EXPECT_DOUBLE_EQ(res.fraction(775.0), 0.0);
}

} // namespace
} // namespace harmonia
