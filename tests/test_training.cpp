/**
 * @file
 * Tests for the sensitivity-predictor training pipeline (paper
 * Section 4): the fitted models must reach the paper-class
 * correlations on the device model.
 */

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/core/training.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

namespace
{

const GpuDevice &
device()
{
    static GpuDevice dev;
    return dev;
}

const TrainingResult &
fullTraining()
{
    static TrainingResult result =
        trainPredictors(device(), standardSuite());
    return result;
}

} // namespace

TEST(Training, CollectsPerConfigSamples)
{
    TrainingOptions options;
    options.iterationsPerKernel = 2;
    options.configsPerKernel = 3;
    const auto samples = collectTrainingSamples(
        device(), {makeComd()}, options);
    // 3 kernels x 2 iterations x 3 configs.
    EXPECT_EQ(samples.size(), 18u);
    for (const auto &s : samples) {
        EXPECT_FALSE(s.kernelId.empty());
        EXPECT_GE(s.bandwidthSens, 0.0);
        EXPECT_LE(s.bandwidthSens, 1.0);
        EXPECT_GE(s.computeSens, 0.0);
        EXPECT_LE(s.computeSens, 1.0);
    }
}

TEST(Training, AveragedModeReducesToOneSamplePerIteration)
{
    TrainingOptions options;
    options.iterationsPerKernel = 2;
    options.configsPerKernel = 4;
    options.averageAcrossConfigs = true;
    const auto samples = collectTrainingSamples(
        device(), {makeComd()}, options);
    EXPECT_EQ(samples.size(), 6u); // 3 kernels x 2 iterations
}

TEST(Training, CorrelationsReachPaperClass)
{
    // Paper Section 4.3: 0.96 bandwidth, 0.91 compute. The shape
    // target on this model is >= ~0.85 for both.
    const TrainingResult &r = fullTraining();
    EXPECT_GT(r.bandwidthFit.correlation, 0.85);
    EXPECT_GT(r.computeFit.correlation, 0.85);
}

TEST(Training, MeanAbsoluteErrorIsSingleDigitPercent)
{
    const TrainingResult &r = fullTraining();
    EXPECT_LT(r.bandwidthMae, 0.12);
    EXPECT_LT(r.computeMae, 0.12);
}

TEST(Training, PredictorSeparatesStressBenchmarks)
{
    const SensitivityPredictor p = fullTraining().predictor();
    const CounterSet mf =
        device()
            .run(makeMaxFlops().kernels.front(), 0,
                 device().space().maxConfig())
            .timing.counters;
    const CounterSet dm =
        device()
            .run(makeDeviceMemory().kernels.front(), 0,
                 device().space().maxConfig())
            .timing.counters;
    EXPECT_EQ(p.predictBins(mf).compute, SensitivityBin::High);
    EXPECT_EQ(p.predictBins(mf).bandwidth, SensitivityBin::Low);
    EXPECT_EQ(p.predictBins(dm).bandwidth, SensitivityBin::High);
}

TEST(Training, FitRejectsTooFewSamples)
{
    std::vector<TrainingSample> samples(5);
    EXPECT_THROW(fitPredictors(samples), ConfigError);
}

TEST(Training, OptionsValidated)
{
    TrainingOptions options;
    options.iterationsPerKernel = 0;
    EXPECT_THROW(
        collectTrainingSamples(device(), {makeComd()}, options),
        ConfigError);
    options = TrainingOptions{};
    options.configsPerKernel = 1;
    EXPECT_THROW(
        collectTrainingSamples(device(), {makeComd()}, options),
        ConfigError);
    EXPECT_THROW(collectTrainingSamples(device(), {}, {}), ConfigError);
}
