/**
 * @file
 * Tests for the 14-application workload suite: structural validity
 * and the paper-documented per-application signatures.
 */

#include <set>

#include <gtest/gtest.h>

#include "harmonia/common/error.hh"
#include "harmonia/sim/gpu_device.hh"
#include "harmonia/workloads/suite.hh"

using namespace harmonia;

TEST(Suite, Has14Applications)
{
    const auto suite = standardSuite();
    EXPECT_EQ(suite.size(), 14u);
    std::set<std::string> names;
    size_t kernels = 0;
    for (const auto &app : suite) {
        EXPECT_NO_THROW(app.validate());
        names.insert(app.name);
        kernels += app.kernels.size();
    }
    EXPECT_EQ(names.size(), 14u);
    // The paper trains on 25 kernels; our suite carries a comparable
    // population.
    EXPECT_GE(kernels, 25u);
}

TEST(Suite, KernelIdsAreUnique)
{
    std::set<std::string> ids;
    for (const auto &app : standardSuite()) {
        for (const auto &k : app.kernels)
            EXPECT_TRUE(ids.insert(k.id()).second)
                << "duplicate kernel id " << k.id();
    }
}

TEST(Suite, SuiteWithoutStressDropsExactlyTwo)
{
    const auto reduced = suiteWithoutStress();
    EXPECT_EQ(reduced.size(), 12u);
    for (const auto &app : reduced) {
        EXPECT_NE(app.name, "MaxFlops");
        EXPECT_NE(app.name, "DeviceMemory");
    }
}

TEST(Suite, AppByNameFindsAndThrows)
{
    EXPECT_EQ(appByName("CoMD").name, "CoMD");
    EXPECT_THROW(appByName("NotAnApp"), ConfigError);
}

TEST(Suite, ApplicationKernelLookup)
{
    const Application app = makeComd();
    EXPECT_EQ(app.kernel("AdvanceVelocity").name, "AdvanceVelocity");
    EXPECT_THROW(app.kernel("Nope"), ConfigError);
}

TEST(Suite, BottomScanHas30PercentOccupancy)
{
    // The paper's flagship occupancy example (Section 3.5).
    const KernelProfile k = appByName("Sort").kernel("BottomScan");
    EXPECT_EQ(k.resources.vgprPerWorkitem, 66);
    const OccupancyInfo occ = computeOccupancy(hd7970(), k.resources);
    EXPECT_DOUBLE_EQ(occ.occupancy, 0.3);
}

TEST(Suite, AdvanceVelocityHasFullOccupancy)
{
    const KernelProfile k = appByName("CoMD").kernel("AdvanceVelocity");
    const OccupancyInfo occ = computeOccupancy(hd7970(), k.resources);
    EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Suite, SradPrepareIsTinyAndDivergent)
{
    // Section 3.5 / Figure 8: ~75% divergence, 8 ALU instructions.
    const KernelPhase p = appByName("SRAD").kernel("Prepare").phase(0);
    EXPECT_DOUBLE_EQ(p.aluInstsPerItem, 8.0);
    EXPECT_NEAR(p.branchDivergence, 0.75, 1e-12);
}

TEST(Suite, BottomScanExceedsTwoMillionInstructions)
{
    // Section 3.5: over 2M dynamic instructions with ~6% divergence.
    const KernelPhase p = appByName("Sort").kernel("BottomScan").phase(0);
    const double waveInsts = p.workItems / 64.0 * p.aluInstsPerItem;
    EXPECT_GT(waveInsts, 2e6);
    EXPECT_NEAR(p.branchDivergence, 0.06, 1e-12);
}

TEST(Suite, Graph500WorkVariesAcrossIterations)
{
    // Figure 14: instruction totals vary strongly across the 8 levels.
    const KernelProfile k = appByName("Graph500").kernel("BottomStepUp");
    double lo = 1e300;
    double hi = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
        const KernelPhase p = k.phase(iter);
        const double insts = p.workItems * p.aluInstsPerItem;
        lo = std::min(lo, insts);
        hi = std::max(hi, insts);
    }
    EXPECT_GT(hi / lo, 2.0);
}

TEST(Suite, XsbenchRunsTwoIterations)
{
    // Section 7.2: XSBench executes only 2 iterations per kernel.
    EXPECT_EQ(appByName("XSBench").iterations, 2);
}

TEST(Suite, BptBenefitsFromFewerCus)
{
    // Section 7.1: power gating CUs relieves L2 thrashing and
    // *improves* performance for BPT.
    GpuDevice device;
    const KernelProfile k = appByName("BPT").kernel("FindK");
    const double t32 = device.run(k, 0, {32, 1000, 1375}).time();
    const double t16 = device.run(k, 0, {16, 1000, 1375}).time();
    EXPECT_LT(t16, t32);
}

TEST(Suite, MaxFlopsIsComputeBoundAndDeviceMemoryIsNot)
{
    GpuDevice device;
    const KernelResult mf = device.run(
        makeMaxFlops().kernels.front(), 0, {32, 1000, 1375});
    const KernelResult dm = device.run(
        makeDeviceMemory().kernels.front(), 0, {32, 1000, 1375});
    EXPECT_GT(mf.timing.counters.valuBusy, 90.0);
    EXPECT_LT(mf.timing.counters.icActivity, 0.05);
    EXPECT_GT(dm.timing.counters.memUnitBusy, 90.0);
    EXPECT_GT(dm.timing.counters.icActivity, 0.7);
}

TEST(Application, ValidationCatchesStructureErrors)
{
    Application app;
    app.name = "x";
    EXPECT_THROW(app.validate(), ConfigError); // no kernels

    KernelProfile k;
    k.app = "wrong";
    k.name = "k";
    app.kernels.push_back(k);
    EXPECT_THROW(app.validate(), ConfigError); // app mismatch

    app.kernels.front().app = "x";
    app.iterations = 0;
    EXPECT_THROW(app.validate(), ConfigError);
    app.iterations = 3;
    EXPECT_NO_THROW(app.validate());
}
