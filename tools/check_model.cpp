/**
 * @file
 * check_model — sweep the whole application suite across all 448
 * hardware configurations and verify every registered physical
 * invariant of the performance/power model (src/check/).
 *
 * Usage:
 *   check_model [--device NAME] [--jobs N] [--iterations N]
 *               [--app NAME]... [--invariant ID]... [--max-report N]
 *               [--list] [--list-devices]
 *
 *   --device NAME   Check a registered device profile instead of the
 *                   default hd7970 (see --list-devices). The sweep
 *                   covers that device's full lattice.
 *   --list-devices  Print the registered device names and exit.
 *   --jobs N        Worker threads for the sweeps (or HARMONIA_JOBS).
 *   --iterations N  Cap iterations checked per kernel (default: all).
 *   --app NAME      Restrict to one application (repeatable).
 *   --invariant ID  Run only the named invariant (repeatable).
 *   --max-report N  Print at most N diagnostics (default 25).
 *   --no-simd       Sweep through the scalar reference path instead
 *                   of the SIMD-batched kernels (same output).
 *   --list          Print the invariant catalog and exit.
 *
 * Output on stdout is bitwise identical for any --jobs value (the
 * wall-clock note goes to stderr); exit status is non-zero when any
 * invariant is violated.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harmonia/harmonia.hh"

using namespace harmonia;

namespace
{

struct CliOptions
{
    CheckOptions check;
    std::vector<std::string> apps;
    std::string device; ///< Registry name; empty = default.
    size_t maxReport = 25;
    bool list = false;
    bool listDevices = false;
};

[[noreturn]] void
usage(int status)
{
    std::cout
        << "usage: check_model [--device NAME] [--jobs N] "
           "[--iterations N] [--app NAME]... [--invariant ID]... "
           "[--max-report N] [--no-simd] [--list] [--list-devices]\n";
    std::exit(status);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    if (const char *env = std::getenv("HARMONIA_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0)
            opt.check.jobs = v;
    }
    auto intArg = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc)
            fatal("check_model: ", flag, " needs a value");
        return std::atoi(argv[++i]);
    };
    auto strArg = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc)
            fatal("check_model: ", flag, " needs a value");
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            opt.check.jobs = std::max(1, intArg(i, arg));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.check.jobs = std::max(1, std::atoi(arg.c_str() + 7));
        } else if (arg == "--iterations") {
            opt.check.maxIterationsPerKernel = intArg(i, arg);
        } else if (arg == "--app") {
            opt.apps.push_back(strArg(i, arg));
        } else if (arg == "--device") {
            opt.device = strArg(i, arg);
        } else if (arg.rfind("--device=", 0) == 0) {
            opt.device = arg.substr(9);
        } else if (arg == "--list-devices") {
            opt.listDevices = true;
        } else if (arg == "--invariant") {
            opt.check.invariantIds.push_back(strArg(i, arg));
        } else if (arg == "--max-report") {
            opt.maxReport =
                static_cast<size_t>(std::max(0, intArg(i, arg)));
        } else if (arg == "--no-simd") {
            opt.check.simd = false;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "check_model: unknown argument '" << arg
                      << "'\n";
            usage(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    if (opt.list) {
        TextTable table({"invariant", "description"});
        for (const Invariant &inv : standardInvariants())
            table.row().cell(inv.id()).cell(inv.description());
        table.print(std::cout, "Invariant catalog");
        return 0;
    }

    if (opt.listDevices) {
        TextTable table({"device", "lattice", "description"});
        for (const std::string &name : Device::names()) {
            const DeviceProfile profile =
                DeviceRegistry::instance().profile(name).value();
            table.row()
                .cell(profile.name)
                .numInt(static_cast<long long>(profile.latticeSize()))
                .cell(profile.description);
        }
        table.print(std::cout, "Device catalog");
        return 0;
    }

    try {
        std::vector<Application> suite;
        if (opt.apps.empty()) {
            suite = Suite::standard().apps();
        } else {
            const Suite all = Suite::standard();
            for (const std::string &name : opt.apps)
                suite.push_back(all.app(name).value());
        }

        const Device device = [&] {
            if (opt.device.empty())
                return Device();
            // value() throws ConfigError on an unknown name; the
            // SimError handler below turns it into exit status 2.
            return std::move(Device::make(opt.device).value());
        }();
        const ModelChecker checker(device.gpu(), opt.check);

        // The device tag is printed only under --device: the default
        // invocation's stdout predates the registry and stays
        // byte-identical.
        std::cout << "check_model: ";
        if (!opt.device.empty())
            std::cout << device.name() << ", ";
        std::cout << suite.size() << " app(s), "
                  << device.space().size() << " configurations, "
                  << checker.invariants().size() << " invariant(s)\n\n";

        const auto start = std::chrono::steady_clock::now();
        TextTable table(
            {"app", "kernels", "invocations", "points", "violations"});
        CheckReport total;
        for (const Application &app : suite) {
            CheckReport rep = checker.checkApplication(app);
            table.row()
                .cell(app.name)
                .numInt(static_cast<long long>(app.kernels.size()))
                .numInt(static_cast<long long>(rep.invocations))
                .numInt(static_cast<long long>(rep.points))
                .numInt(static_cast<long long>(rep.violations.size()));
            total.merge(std::move(rep));
        }
        const auto end = std::chrono::steady_clock::now();

        table.print(std::cout, "Invariant sweep");
        std::cout << '\n';

        if (!total.clean()) {
            const size_t shown =
                std::min(opt.maxReport, total.violations.size());
            for (size_t i = 0; i < shown; ++i)
                std::cout << total.violations[i].str() << '\n';
            if (shown < total.violations.size())
                std::cout << "... and "
                          << total.violations.size() - shown
                          << " more violation(s)\n";
            std::cout << '\n';
        }

        std::cout << total.violations.size()
                  << " invariant violation(s) across " << total.points
                  << " design-space points (" << total.invocations
                  << " invocations, " << total.checksRun
                  << " invariant evaluations)\n";

        const double ms = std::chrono::duration<double, std::milli>(
                              end - start)
                              .count();
        std::cerr << "check_model wall-clock: " << ms
                  << " ms (jobs=" << opt.check.jobs << ")\n";

        return total.clean() ? 0 : 1;
    } catch (const SimError &e) {
        std::cerr << "check_model: " << e.what() << '\n';
        return 2;
    }
}
