/**
 * @file
 * harmonia_client — load generator and latency reporter for harmoniad.
 *
 * Connects to a running daemon over its Unix-domain socket or TCP
 * listener — with --clients N, over N concurrent connections —
 * generates a deterministic request stream (mixed verbs or pure
 * evaluate), sends it open-loop at a configurable arrival rate — send
 * times follow the schedule regardless of response progress, like real
 * concurrent clients — and reports client-side latency percentiles,
 * throughput, and the error-reply count. Requests are dealt
 * round-robin across the connections, so consecutive requests of one
 * coalescing cohort (--group) arrive on *different* connections: the
 * fan-in pattern the daemon's cross-connection micro-batcher fuses.
 *
 * Usage:
 *   harmonia_client (--socket PATH | --tcp HOST:PORT) [options]
 *
 *   --clients N      Concurrent connections to spread the load over
 *                    (default 1).
 *   --requests N     Requests to send (default 100).
 *   --rate R         Open-loop arrival rate, requests/second
 *                    (0 = send everything immediately; default 0).
 *   --mix MODE       "evaluate" (default) or "mixed"
 *                    (evaluate/sweep/govern/ping blend).
 *   --configs K      Lattice points per evaluate request (default 8).
 *   --kernels M      Distinct kernels to spread requests over
 *                    (default 4).
 *   --group G        Consecutive requests sharing one
 *                    (kernel, iteration) — the unit the daemon's
 *                    micro-batcher can coalesce (default 4).
 *   --device NAME    Tag requests with a registered device profile
 *                    (repeatable). One name sends the whole stream to
 *                    that device; several deal cohorts across them
 *                    round-robin — a mixed-device replay that
 *                    exercises the daemon's per-device cache
 *                    partitioning (visible under "devices" in
 *                    --stats). Configs are drawn from each named
 *                    device's own lattice. Default: no device field
 *                    (the daemon's default device).
 *   --governor NAME  Governor for govern requests (default baseline —
 *                    keeps the smoke test free of training cost).
 *   --seed N         Workload RNG seed (default 1).
 *   --stats          Fetch and print the daemon stats snapshot at the
 *                    end.
 *   --shutdown       Send a shutdown request after the load.
 *   --quiet          Only print the summary line.
 *
 * Exit status: 0 when every request got an ok reply, 1 when any error
 * reply or transport failure occurred.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harmonia/harmonia.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

struct ClientOptions
{
    std::string socketPath;
    std::string tcpAddr; ///< "HOST:PORT"; empty = Unix socket.
    int clients = 1;
    int requests = 100;
    double rate = 0.0;
    std::string mix = "evaluate";
    int configsPerRequest = 8;
    int kernels = 4;
    int group = 4;
    std::vector<std::string> devices; ///< Empty = no device field.
    std::string governor = "baseline";
    uint64_t seed = 1;
    bool stats = false;
    bool shutdown = false;
    bool quiet = false;
};

[[noreturn]] void
usage(int status)
{
    std::cout << "usage: harmonia_client (--socket PATH | --tcp "
                 "HOST:PORT) [--clients N]\n"
                 "                       [--requests N] [--rate R] "
                 "[--mix evaluate|mixed]\n"
                 "                       [--configs K] [--kernels M] "
                 "[--device NAME]... [--governor NAME]\n"
                 "                       [--seed N] [--stats] "
                 "[--shutdown] [--quiet]\n";
    std::exit(status);
}

/** splitmix64: deterministic, seedable, no <random> state to drag. */
uint64_t
nextRand(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** One device's request vocabulary: its name tag + lattice axes. */
struct DeviceLattice
{
    std::string name; ///< "device" field value; empty = omit.
    std::vector<int> cuValues{4, 8, 12, 16, 20, 24, 28, 32};
    std::vector<int> computeValues{300, 400, 500, 600,
                                   700, 800, 900, 1000};
    std::vector<int> memValues{475, 625, 775, 925, 1075, 1225, 1375};
};

struct Workload
{
    std::vector<std::string> kernelIds;
    std::vector<DeviceLattice> devices; ///< >= 1 entry.
};

/** Axis values for one registered device, from its own lattice. */
DeviceLattice
latticeFor(const std::string &name)
{
    const Result<DeviceProfile> profile =
        DeviceRegistry::instance().profile(name);
    if (!profile.ok()) {
        std::cerr << "harmonia_client: " << profile.status().message()
                  << '\n';
        std::exit(2);
    }
    const ConfigSpace space(profile.value().config);
    DeviceLattice lattice;
    lattice.name = profile.value().name;
    lattice.cuValues = space.values(Tunable::CuCount);
    lattice.computeValues = space.values(Tunable::ComputeFreq);
    lattice.memValues = space.values(Tunable::MemFreq);
    return lattice;
}

JsonValue
randomConfig(const DeviceLattice &w, uint64_t &rng)
{
    return JsonValue::object({
        {"cu", JsonValue(w.cuValues[nextRand(rng) %
                                    w.cuValues.size()])},
        {"compute_mhz",
         JsonValue(
             w.computeValues[nextRand(rng) % w.computeValues.size()])},
        {"mem_mhz",
         JsonValue(w.memValues[nextRand(rng) % w.memValues.size()])},
    });
}

std::string
makeRequest(const ClientOptions &opt, Workload &w, uint64_t &rng,
            int index)
{
    JsonValue req = JsonValue::object({
        {"schema", JsonValue(kRequestSchema)},
        {"id", JsonValue(static_cast<int64_t>(index))},
    });

    // Requests in the same cohort target the same (device, kernel,
    // iteration) with different config subsets, so ones that arrive
    // within a coalescing window fuse into a single lattice run.
    // Cohorts deal round-robin across the --device list: adjacent
    // cohorts hit different per-device caches.
    const int cohort = index / std::max(1, opt.group);
    const DeviceLattice &device =
        w.devices[static_cast<size_t>(cohort) % w.devices.size()];
    const std::string &kernel =
        w.kernelIds[static_cast<size_t>(cohort) % w.kernelIds.size()];
    const int iteration =
        cohort / static_cast<int>(w.kernelIds.size());
    if (!device.name.empty())
        req.set("device", JsonValue(device.name));

    // Mixed traffic: mostly evaluates, a sprinkling of everything
    // else — the pattern the coalescer sees in practice.
    int lane = 0; // evaluate
    if (opt.mix == "mixed") {
        const uint64_t roll = nextRand(rng) % 10;
        lane = roll < 6 ? 0 : (roll < 7 ? 1 : (roll < 9 ? 2 : 3));
    }

    if (lane == 0) {
        JsonValue configs = JsonValue::array();
        for (int c = 0; c < opt.configsPerRequest; ++c)
            configs.push(randomConfig(device, rng));
        req.set("verb", JsonValue("evaluate"));
        req.set("kernel", JsonValue(kernel));
        req.set("iteration", JsonValue(iteration));
        req.set("configs", std::move(configs));
    } else if (lane == 1) {
        req.set("verb", JsonValue("sweep"));
        req.set("kernel", JsonValue(kernel));
        req.set("iteration", JsonValue(0));
        req.set("objective", JsonValue("min_ed2"));
        req.set("top", JsonValue(3));
    } else if (lane == 2) {
        req.set("verb", JsonValue("govern"));
        // Sessions are device-bound: qualify the name so the same
        // slot on two devices never collides into a binding error.
        std::string session = "load-" + std::to_string(index % 4);
        if (!device.name.empty())
            session += "@" + device.name;
        req.set("session", JsonValue(session));
        req.set("governor", JsonValue(opt.governor));
        req.set("kernel", JsonValue(kernel));
        req.set("iteration", JsonValue(index));
    } else {
        req.set("verb", JsonValue("ping"));
    }
    return req.dump();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

ClientOptions
parseArgs(int argc, char **argv)
{
    ClientOptions opt;
    auto value = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "harmonia_client: " << flag
                      << " needs a value\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket")
            opt.socketPath = value(i, arg);
        else if (arg == "--tcp")
            opt.tcpAddr = value(i, arg);
        else if (arg == "--clients")
            opt.clients = std::max(1, std::atoi(value(i, arg).c_str()));
        else if (arg == "--requests")
            opt.requests = std::max(1, std::atoi(value(i, arg).c_str()));
        else if (arg == "--rate")
            opt.rate = std::atof(value(i, arg).c_str());
        else if (arg == "--mix")
            opt.mix = value(i, arg);
        else if (arg == "--configs")
            opt.configsPerRequest =
                std::max(1, std::atoi(value(i, arg).c_str()));
        else if (arg == "--kernels")
            opt.kernels = std::max(1, std::atoi(value(i, arg).c_str()));
        else if (arg == "--group")
            opt.group = std::max(1, std::atoi(value(i, arg).c_str()));
        else if (arg == "--device")
            opt.devices.push_back(value(i, arg));
        else if (arg == "--governor")
            opt.governor = value(i, arg);
        else if (arg == "--seed")
            opt.seed = std::strtoull(value(i, arg).c_str(), nullptr, 0);
        else if (arg == "--stats")
            opt.stats = true;
        else if (arg == "--shutdown")
            opt.shutdown = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::cerr << "harmonia_client: unknown argument '" << arg
                      << "'\n";
            usage(2);
        }
    }
    if (opt.socketPath.empty() == opt.tcpAddr.empty()) {
        std::cerr << "harmonia_client: exactly one of --socket and "
                     "--tcp is required\n";
        usage(2);
    }
    if (opt.mix != "evaluate" && opt.mix != "mixed") {
        std::cerr << "harmonia_client: --mix must be evaluate|mixed\n";
        usage(2);
    }
    if (opt.clients > opt.requests)
        opt.clients = opt.requests;
    return opt;
}

/** Connect one blocking stream socket to the daemon; -1 on failure
 * (with the error already printed). */
int
connectOnce(const ClientOptions &opt)
{
    if (opt.tcpAddr.empty()) {
        const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            std::cerr << "harmonia_client: socket(): "
                      << std::strerror(errno) << '\n';
            return -1;
        }
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0) {
            std::cerr << "harmonia_client: connect("
                      << opt.socketPath
                      << "): " << std::strerror(errno) << '\n';
            close(fd);
            return -1;
        }
        return fd;
    }

    const size_t colon = opt.tcpAddr.rfind(':');
    if (colon == std::string::npos) {
        std::cerr << "harmonia_client: --tcp wants HOST:PORT, got '"
                  << opt.tcpAddr << "'\n";
        return -1;
    }
    std::string host = opt.tcpAddr.substr(0, colon);
    if (host.empty() || host == "localhost")
        host = "127.0.0.1";
    const int port = std::atoi(opt.tcpAddr.c_str() + colon + 1);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        std::cerr << "harmonia_client: bad TCP host '" << host
                  << "'\n";
        return -1;
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::cerr << "harmonia_client: socket(): "
                  << std::strerror(errno) << '\n';
        return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        std::cerr << "harmonia_client: connect(" << opt.tcpAddr
                  << "): " << std::strerror(errno) << '\n';
        close(fd);
        return -1;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

/** One of the N concurrent client connections. */
struct Connection
{
    int fd = -1;
    std::string sendBuf;
    std::string recvBuf;
};

} // namespace

int
main(int argc, char **argv)
{
    using Clock = std::chrono::steady_clock;
    const ClientOptions opt = parseArgs(argc, argv);

    Workload workload;
    if (opt.devices.empty()) {
        // No tag, HD7970 axes: byte-identical streams to the
        // pre-registry client.
        workload.devices.emplace_back();
    } else {
        for (const std::string &name : opt.devices)
            workload.devices.push_back(latticeFor(name));
    }
    for (const Application &app : standardSuite()) {
        for (const KernelProfile &k : app.kernels) {
            workload.kernelIds.push_back(k.id());
            if (workload.kernelIds.size() >=
                static_cast<size_t>(opt.kernels))
                break;
        }
        if (workload.kernelIds.size() >=
            static_cast<size_t>(opt.kernels))
            break;
    }

    // Pre-generate the whole stream so send time is pure I/O.
    uint64_t rng = opt.seed;
    std::vector<std::string> requests;
    requests.reserve(static_cast<size_t>(opt.requests));
    for (int i = 0; i < opt.requests; ++i)
        requests.push_back(makeRequest(opt, workload, rng, i));

    std::vector<Connection> conns(static_cast<size_t>(opt.clients));
    for (Connection &conn : conns) {
        conn.fd = connectOnce(opt);
        if (conn.fd < 0)
            return 1;
        // Non-blocking during the open-loop phase so a full send
        // buffer can never deadlock against a daemon busy writing
        // responses.
        fcntl(conn.fd, F_SETFL,
              fcntl(conn.fd, F_GETFL, 0) | O_NONBLOCK);
    }

    // Open loop: request i is due at start + i/rate and goes out on
    // connection i % N; sends never wait for responses. Responses are
    // drained whenever any socket has them, and matched to send
    // stamps by id (ids are globally unique across connections).
    std::vector<Clock::time_point> sentAt(
        static_cast<size_t>(opt.requests));
    std::vector<double> latenciesMs;
    latenciesMs.reserve(static_cast<size_t>(opt.requests));
    size_t sent = 0;
    size_t received = 0;
    size_t errors = 0;
    const Clock::time_point start = Clock::now();

    auto handleLine = [&](const std::string &line) {
        Result<JsonValue> doc = parseJson(line);
        if (!doc.ok()) {
            ++errors;
            ++received;
            std::cerr << "harmonia_client: unparseable response: "
                      << line << '\n';
            return;
        }
        const JsonValue *ok = doc.value().find("ok");
        const JsonValue *id = doc.value().find("id");
        if (!ok || !ok->isBool() || !ok->asBool()) {
            ++errors;
            if (!opt.quiet)
                std::cerr << "harmonia_client: error reply: " << line
                          << '\n';
        }
        if (id && id->isInt()) {
            const int64_t i = id->asInt();
            if (i >= 0 && i < opt.requests) {
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - sentAt[static_cast<size_t>(i)])
                        .count();
                latenciesMs.push_back(ms);
            }
        }
        ++received;
    };

    std::vector<pollfd> pfds(conns.size());
    while (received < static_cast<size_t>(opt.requests)) {
        const Clock::time_point now = Clock::now();

        // Queue every request whose scheduled arrival time has come
        // onto its connection.
        while (sent < requests.size()) {
            const double dueSec =
                opt.rate > 0.0 ? static_cast<double>(sent) / opt.rate
                               : 0.0;
            const double elapsed =
                std::chrono::duration<double>(now - start).count();
            if (elapsed < dueSec)
                break;
            Connection &conn = conns[sent % conns.size()];
            sentAt[sent] = now;
            conn.sendBuf += requests[sent];
            conn.sendBuf += '\n';
            ++sent;
        }

        bool sendBacklog = false;
        for (Connection &conn : conns) {
            if (conn.sendBuf.empty())
                continue;
            const ssize_t n = write(conn.fd, conn.sendBuf.data(),
                                    conn.sendBuf.size());
            if (n > 0)
                conn.sendBuf.erase(0, static_cast<size_t>(n));
            else if (n < 0 && errno != EAGAIN && errno != EINTR) {
                std::cerr << "harmonia_client: write(): "
                          << std::strerror(errno) << '\n';
                return 1;
            }
            if (!conn.sendBuf.empty())
                sendBacklog = true;
        }

        int timeoutMs = 0;
        if (!sendBacklog && sent < requests.size() &&
            opt.rate > 0.0) {
            const double dueSec = static_cast<double>(sent) / opt.rate;
            const double elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            timeoutMs = std::max(
                0, static_cast<int>((dueSec - elapsed) * 1000.0));
        } else if (!sendBacklog && sent == requests.size()) {
            timeoutMs = 1000;
        }

        for (size_t c = 0; c < conns.size(); ++c) {
            pfds[c].fd = conns[c].fd;
            pfds[c].events = static_cast<short>(
                POLLIN |
                (conns[c].sendBuf.empty() ? 0 : POLLOUT));
            pfds[c].revents = 0;
        }
        const int rc =
            poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                 timeoutMs);
        if (rc <= 0)
            continue;
        for (size_t c = 0; c < conns.size(); ++c) {
            if (!(pfds[c].revents & (POLLIN | POLLHUP)))
                continue;
            Connection &conn = conns[c];
            char buf[8192];
            const ssize_t n = read(conn.fd, buf, sizeof(buf));
            if (n > 0) {
                conn.recvBuf.append(buf, static_cast<size_t>(n));
                size_t startPos = 0;
                while (true) {
                    const size_t nl =
                        conn.recvBuf.find('\n', startPos);
                    if (nl == std::string::npos)
                        break;
                    handleLine(conn.recvBuf.substr(startPos,
                                                   nl - startPos));
                    startPos = nl + 1;
                }
                conn.recvBuf.erase(0, startPos);
            } else if (n == 0) {
                std::cerr << "harmonia_client: daemon closed a "
                             "connection with "
                          << (opt.requests - received)
                          << " response(s) outstanding\n";
                return 1;
            }
        }
    }
    const Clock::time_point end = Clock::now();

    // Back to blocking for the simple stats/shutdown round trips
    // (first connection only).
    const int fd0 = conns.front().fd;
    fcntl(fd0, F_SETFL, fcntl(fd0, F_GETFL, 0) & ~O_NONBLOCK);

    auto roundTrip = [&](const std::string &line) -> std::string {
        std::string out = line + "\n";
        size_t off = 0;
        while (off < out.size()) {
            const ssize_t n = write(fd0, out.data() + off,
                                    out.size() - off);
            if (n <= 0 && errno != EINTR)
                return {};
            if (n > 0)
                off += static_cast<size_t>(n);
        }
        std::string reply;
        char buf[8192];
        while (reply.find('\n') == std::string::npos) {
            const ssize_t n = read(fd0, buf, sizeof(buf));
            if (n <= 0)
                return reply;
            reply.append(buf, static_cast<size_t>(n));
        }
        return reply.substr(0, reply.find('\n'));
    };

    if (opt.stats) {
        const std::string reply = roundTrip(
            std::string("{\"schema\":\"") + kRequestSchema +
            "\",\"id\":\"stats\",\"verb\":\"stats\"}");
        std::cout << "daemon stats: " << reply << '\n';
    }
    if (opt.shutdown) {
        roundTrip(std::string("{\"schema\":\"") + kRequestSchema +
                  "\",\"id\":\"bye\",\"verb\":\"shutdown\"}");
    }
    for (const Connection &conn : conns)
        close(conn.fd);

    std::sort(latenciesMs.begin(), latenciesMs.end());
    const double wallSec =
        std::chrono::duration<double>(end - start).count();
    const double throughput =
        wallSec > 0.0 ? static_cast<double>(opt.requests) / wallSec
                      : 0.0;
    double meanMs = 0.0;
    for (const double ms : latenciesMs)
        meanMs += ms;
    if (!latenciesMs.empty())
        meanMs /= static_cast<double>(latenciesMs.size());

    std::cout << "harmonia_client: " << opt.requests << " requests ("
              << opt.mix << ", " << conns.size() << " connection"
              << (conns.size() == 1 ? "" : "s") << "), " << errors
              << " error(s), " << throughput << " req/s\n"
              << "latency ms: mean " << meanMs << "  p50 "
              << percentile(latenciesMs, 50.0) << "  p90 "
              << percentile(latenciesMs, 90.0) << "  p99 "
              << percentile(latenciesMs, 99.0) << "  max "
              << (latenciesMs.empty() ? 0.0 : latenciesMs.back())
              << '\n';

    return errors == 0 ? 0 : 1;
}
