/**
 * @file
 * The unified experiment driver: every paper exhibit (figures,
 * tables, ablations, extensions, microbenchmarks) registered in the
 * src/exp registry behind one CLI. See src/exp/driver.hh for usage.
 */

#include "exp/driver.hh"

int
main(int argc, char **argv)
{
    return harmonia::exp::runDriver(argc, argv);
}
