/**
 * @file
 * The unified experiment driver: every paper exhibit (figures,
 * tables, ablations, extensions, microbenchmarks) registered in the
 * src/exp registry behind one CLI. See include/harmonia/exp.hh for usage.
 */

#include "harmonia/exp.hh"

int
main(int argc, char **argv)
{
    return harmonia::exp::runDriver(argc, argv);
}
