/**
 * @file
 * harmonia_lint — static source-contract analyzer for this repo.
 *
 * Scans src/, include/, tools/, bench/, examples/, and tests/ and
 * enforces the contracts the dynamic suites can only catch after the
 * fact: determinism (no ambient randomness, no unordered-container
 * iteration order reaching outputs), FP-contract safety (every TU
 * including the SIMD shim carries the per-source -ffp-contract=off
 * flags in CMake), layering (facade-only tools/examples, no-throw
 * serving layer), and header hygiene. See docs/CHECKING.md, "Layer 0:
 * source contracts".
 *
 * Usage:
 *   harmonia_lint [--root DIR] [--rule ID]... [--baseline FILE]
 *                 [--no-baseline] [--json] [--list]
 *
 *   --root DIR      Repo root to scan (default: .).
 *   --rule ID       Run only the named rule (repeatable).
 *   --baseline F    Suppression file (default: <root>/lint-baseline.txt
 *                   when present).
 *   --no-baseline   Ignore the baseline; report everything as new.
 *   --json          Emit the harmonia.lint-report/1 JSON document.
 *   --list          Print the rule catalog and exit.
 *
 * Exit status: 0 clean (no non-baselined findings), 1 new findings,
 * 2 usage/configuration error. Output depends only on the tree, never
 * on scan order, so CI logs diff cleanly.
 */

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harmonia/harmonia.hh"

using namespace harmonia;

namespace
{

struct CliOptions
{
    std::string root = ".";
    std::vector<std::string> ruleIds;
    std::string baselinePath; // empty: default discovery
    bool noBaseline = false;
    bool json = false;
    bool list = false;
};

[[noreturn]] void
usage(int status)
{
    std::cout << "usage: harmonia_lint [--root DIR] [--rule ID]... "
                 "[--baseline FILE] [--no-baseline] [--json] "
                 "[--list]\n";
    std::exit(status);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    auto strArg = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc)
            fatal("harmonia_lint: ", flag, " needs a value");
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            opt.root = strArg(i, arg);
        } else if (arg == "--rule") {
            opt.ruleIds.push_back(strArg(i, arg));
        } else if (arg == "--baseline") {
            opt.baselinePath = strArg(i, arg);
        } else if (arg == "--no-baseline") {
            opt.noBaseline = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "harmonia_lint: unknown argument '" << arg
                      << "'\n";
            usage(2);
        }
    }
    return opt;
}

std::vector<const lint::LintRule *>
selectRules(const CliOptions &opt)
{
    const lint::RuleRegistry &registry = lint::RuleRegistry::instance();
    if (opt.ruleIds.empty())
        return registry.all();
    std::vector<const lint::LintRule *> rules;
    for (const std::string &id : opt.ruleIds) {
        const lint::LintRule *rule = registry.find(id);
        fatalIf(rule == nullptr, "harmonia_lint: unknown rule '", id,
                "' (see --list)");
        rules.push_back(rule);
    }
    return rules;
}

lint::Baseline
loadBaseline(const CliOptions &opt)
{
    if (opt.noBaseline)
        return {};
    if (!opt.baselinePath.empty())
        return lint::Baseline::load(opt.baselinePath);
    const std::filesystem::path fallback =
        std::filesystem::path(opt.root) / "lint-baseline.txt";
    if (std::filesystem::exists(fallback))
        return lint::Baseline::load(fallback.string());
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    if (opt.list) {
        TextTable table({"rule", "severity", "contract"});
        for (const lint::LintRule *rule :
             lint::RuleRegistry::instance().all()) {
            table.row()
                .cell(rule->id())
                .cell(lint::severityName(rule->severity()))
                .cell(rule->description());
        }
        table.print(std::cout, "Source-contract catalog");
        return 0;
    }

    try {
        const std::vector<const lint::LintRule *> rules =
            selectRules(opt);
        const lint::Project project = lint::scanProject(opt.root);
        std::vector<lint::Diagnostic> diagnostics =
            lint::runLint(project, rules);
        const lint::Baseline baseline = loadBaseline(opt);
        const size_t failing = baseline.apply(diagnostics);

        const lint::ReportInput report{project, rules, diagnostics,
                                       baseline};
        if (opt.json)
            lint::writeJsonReport(std::cout, report);
        else
            lint::writeTextReport(std::cout, report);
        return failing ? 1 : 0;
    } catch (const SimError &e) {
        std::cerr << "harmonia_lint: " << e.what() << '\n';
        return 2;
    }
}
