/**
 * @file
 * harmoniad — the batched Harmonia evaluation daemon.
 *
 * Serves the harmonia.request/1 NDJSON protocol (docs/SERVING.md)
 * over a Unix-domain socket, a TCP listener, or stdin/stdout with
 * --stdio (the mode tests and CI pipelines use). Verbs: evaluate,
 * govern, sweep, stats, ping, shutdown.
 *
 * Usage:
 *   harmoniad --socket PATH [options]
 *   harmoniad --tcp HOST:PORT [options]
 *   harmoniad --stdio [options]
 *
 *   --socket PATH     Listen on a Unix-domain socket at PATH.
 *   --tcp HOST:PORT   Listen on a TCP socket (IPv4 or "localhost";
 *                     port 0 picks an ephemeral port, printed on
 *                     startup). May be combined with --socket; both
 *                     listeners feed the same reactor.
 *   --stdio           Serve stdin -> stdout instead of sockets.
 *   --device NAME     Registered device profile backing device-less
 *                     requests (default hd7970; see --list-devices).
 *                     Requests carrying an explicit "device" field
 *                     still select their own profile per request.
 *   --list-devices    Print the registered device names and exit.
 *   --jobs N          Worker threads for lattice runs (or
 *                     HARMONIA_JOBS; default 1).
 *   --no-batching     Disable evaluate micro-batching (one lattice
 *                     run per request; results are identical).
 *   --no-cache        Disable the cross-request result cache.
 *   --cache-file PATH Durable point-cache snapshot: load previously
 *                     evaluated lattice points from PATH at startup
 *                     (warm start) and write the caches back on
 *                     drain, crash-safely. Absent/corrupt/stale
 *                     files degrade to a logged cold start.
 *                     Responses are byte-identical either way.
 *                     Ignored under --no-cache.
 *   --no-simd         Run lattice evaluations through the scalar
 *                     reference path (responses are byte-identical).
 *   --coalesce-us N   Fixed coalescing window in microseconds
 *                     (default: adaptive; 0 = no coalescing).
 *   --max-configs N   Per-request config-list cap (default 1024).
 *   --max-sessions N  Concurrent governor-session cap (default 256).
 *   --max-connections N  Concurrent client connections (default 64);
 *                     further connects get one error reply.
 *   --idle-timeout-ms N  Evict connections with no read/write
 *                     progress for N ms (default 0 = never).
 *   --max-write-buf BYTES  Per-connection cap on buffered unsent
 *                     response bytes before the connection is shed
 *                     (default 8388608).
 *   --seed N          Sweep RNG seed.
 *
 * Exit status 0 after a clean drain (SIGTERM/SIGINT, a `shutdown`
 * request, or --stdio EOF); the final metrics snapshot is printed to
 * stderr as one JSON line.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harmonia/harmonia.hh"

using namespace harmonia;
using namespace harmonia::serve;

namespace
{

[[noreturn]] void
usage(int status)
{
    std::cout << "usage: harmoniad (--socket PATH | --tcp HOST:PORT | "
                 "--stdio) [--device NAME]\n"
                 "                 [--list-devices] [--jobs N] "
                 "[--no-batching] [--no-cache]\n"
                 "                 [--cache-file PATH]\n"
                 "                 [--no-simd] [--coalesce-us N] "
                 "[--max-configs N] [--max-sessions N]\n"
                 "                 [--max-connections N] "
                 "[--idle-timeout-ms N]\n"
                 "                 [--max-write-buf BYTES] [--seed N]\n";
    std::exit(status);
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceOptions service;
    ServerOptions server;

    if (const char *env = std::getenv("HARMONIA_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0)
            service.jobs = v;
    }

    auto intArg = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc) {
            std::cerr << "harmoniad: " << flag << " needs a value\n";
            usage(2);
        }
        return std::atoi(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            if (i + 1 >= argc) {
                std::cerr << "harmoniad: --socket needs a value\n";
                usage(2);
            }
            server.socketPath = argv[++i];
        } else if (arg == "--tcp") {
            if (i + 1 >= argc) {
                std::cerr << "harmoniad: --tcp needs HOST:PORT\n";
                usage(2);
            }
            server.tcpBind = argv[++i];
        } else if (arg == "--stdio") {
            server.stdio = true;
        } else if (arg == "--device") {
            if (i + 1 >= argc) {
                std::cerr << "harmoniad: --device needs a value\n";
                usage(2);
            }
            service.defaultDevice = argv[++i];
        } else if (arg == "--list-devices") {
            for (const std::string &name : Device::names())
                std::cout << name << '\n';
            return 0;
        } else if (arg == "--jobs") {
            service.jobs = std::max(1, intArg(i, arg));
        } else if (arg == "--no-batching") {
            service.batching = false;
        } else if (arg == "--no-cache") {
            service.cache = false;
        } else if (arg == "--cache-file") {
            if (i + 1 >= argc) {
                std::cerr << "harmoniad: --cache-file needs a value\n";
                usage(2);
            }
            service.cacheFile = argv[++i];
        } else if (arg == "--no-simd") {
            service.simd = false;
        } else if (arg == "--coalesce-us") {
            server.coalesceMicros = std::max(0, intArg(i, arg));
        } else if (arg == "--max-configs") {
            service.maxConfigsPerRequest =
                static_cast<size_t>(std::max(1, intArg(i, arg)));
        } else if (arg == "--max-sessions") {
            service.maxSessions =
                static_cast<size_t>(std::max(1, intArg(i, arg)));
        } else if (arg == "--max-connections") {
            server.maxConnections = std::max(1, intArg(i, arg));
        } else if (arg == "--idle-timeout-ms") {
            server.idleTimeoutMillis = std::max(0, intArg(i, arg));
        } else if (arg == "--max-write-buf") {
            server.maxWriteBufferBytes =
                static_cast<size_t>(std::max(1, intArg(i, arg)));
        } else if (arg == "--seed") {
            if (i + 1 >= argc) {
                std::cerr << "harmoniad: --seed needs a value\n";
                usage(2);
            }
            service.rngSeed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "harmoniad: unknown argument '" << arg
                      << "'\n";
            usage(2);
        }
    }

    if (!server.stdio && server.socketPath.empty() &&
        server.tcpBind.empty()) {
        std::cerr << "harmoniad: need --socket PATH, --tcp HOST:PORT, "
                     "or --stdio\n";
        usage(2);
    }
    if (server.stdio &&
        (!server.socketPath.empty() || !server.tcpBind.empty())) {
        std::cerr << "harmoniad: --stdio excludes --socket/--tcp\n";
        usage(2);
    }
    if (!service.defaultDevice.empty() &&
        !DeviceRegistry::instance().contains(service.defaultDevice)) {
        std::cerr << "harmoniad: unknown device '"
                  << service.defaultDevice << "' (have:";
        for (const std::string &name : Device::names())
            std::cerr << ' ' << name;
        std::cerr << ")\n";
        return 2;
    }

    Service svc(service);
    Server loop(svc, server);
    return loop.run();
}
